"""The end-to-end multi-field inference driver.

This is the paper's full three-level scheme run as one pipeline (Sections
IV-A through IV-D), over many fields:

1. **Seed** — the heuristic Photo pipeline runs on every field, per-field
   detections are mapped into global sky coordinates and merged into one
   deduplicated seed catalog (overlapping fields detect border sources
   twice).
2. **Partition** — the sky is recursively split into equal-work regions and
   re-covered by a half-size-shifted second partition, yielding two stages
   of tasks (:mod:`repro.partition`).
3. **Schedule** — a :class:`~repro.sched.dtree.Dtree` instance hands task
   batches to node-workers; stage-1 tasks only start after every stage-0
   task completed, the two-stage barrier of Section IV-A.
4. **Optimize** — each task jointly optimizes its region's sources with
   Cyclades-scheduled threads (:func:`repro.parallel.optimize_region_parallel`),
   reading every image whose footprint covers the region — multi-field
   fusion, the capability the heuristic baseline lacks.
5. **Merge** — optimized parameters flow back into the global catalog;
   a final deduplication produces the result.

**Node-worker executors.**  Node-workers run in one of two modes, selected
by ``DriverConfig.executor`` (or the ``REPRO_DRIVER_EXECUTOR`` environment
variable): ``"thread"`` workers are threads in this process, ``"process"``
workers are spawn-safe ``multiprocessing`` processes — the paper's
distributed-memory layout, which the GIL cannot cap.  Both modes drive the
same task-execution path and produce bit-for-bit identical catalogs: tasks
are seeded per task id, and every worker reads its sources and frozen halo
from a stage-start snapshot of the catalog, so results never depend on the
executor, the worker count, or task completion order.

**ELBO backends.**  Every source optimization evaluates its objective
through a pluggable backend (``DriverConfig.elbo_backend`` /
``REPRO_ELBO_BACKEND``): the fused analytic kernel
(:mod:`repro.core.kernel` — the production default, evaluating both the
pixel term and the KL terms from compile-once closed-form formulas) or the
Taylor reference path (the correctness oracle).  The driver resolves the
choice once, pins it into the per-task optimizer config, and fingerprints
it, so resumed runs and process workers always evaluate with the same
backend — a checkpoint written under one backend (including under the old
``taylor`` default) refuses to resume under another.

**The sharded catalog.**  The working catalog lives in a
:class:`~repro.driver.shards.ShardedCatalog` — light sources as 44-wide
rows of a :class:`~repro.pgas.GlobalArray` block-partitioned across
node-worker ranks.  The PGAS transport behind it is pluggable
(``DriverConfig.pgas_transport`` / ``REPRO_PGAS_TRANSPORT``): thread
workers default to the in-process transport; process workers default to
POSIX shared-memory windows (:class:`~repro.pgas.SharedMemoryTransport`)
and can instead run over :class:`~repro.pgas.SocketTransport` — TCP
one-sided RMA, the multi-node layout with processes standing in for nodes
— or mpi4py RMA where the dependency exists.  Workers do real one-sided
``get_row``/``put_row`` for exactly the rows a task touches, never pickling
the catalog; catalogs are bit-identical across transports.  Per-worker RMA
traffic lands in the driver report.

**Elastic workers and fault recovery.**  Process node-workers are seats in
a persistent :class:`~repro.driver.pool.WorkerPool`, bound to a run's
state per stage and reusable across ``run_pipeline`` calls (pass ``pool=``
to amortize spawn cost); the pool grows and shrinks between stages and
respawns dead seats.  A worker that dies mid-stage is survived: the
scheduler reclaims its undispatched work (:meth:`~repro.sched.dtree.Dtree
.reclaim`), its in-flight tasks are re-dispatched to surviving workers
(idempotent — snapshot discipline plus per-task seeding make re-execution
bit-identical), and the event is recorded in ``DriverReport.recoveries``.
With ``task_checkpoint`` (and a checkpoint path), every completed task is
also journaled durably (:mod:`repro.driver.checkpoint`), so a *killed run*
resumes mid-stage: journaled tasks replay from disk, the rest re-execute,
and the final catalog is bit-for-bit the uninterrupted one's.

**Field prefetch.**  Fields may be given as in-memory image lists or as
paths to ``.npz`` field files (:mod:`repro.survey.io`).  Path fields are
loaded by a :class:`~repro.survey.io.FieldPrefetcher` thread keyed to the
Dtree's look-ahead (:meth:`~repro.sched.dtree.Dtree.peek`) — the
single-node analogue of the paper's Burst Buffer pipeline.

Progress is checkpointed to JSON after every stage, with the working
catalog written as per-rank shard files (:mod:`repro.driver.checkpoint`),
so a killed run resumes at the last completed stage and reproduces the same
final catalog.  FLOP and throughput accounting accumulate in a
:class:`~repro.perf.counters.Counters` bag and a
:class:`~repro.perf.driver.DriverReport`.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import queue as queue_mod
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.catalog import Catalog
from repro.core.elbo import get_backend, resolve_backend_name
from repro.core.kernel import resolve_kernel_target_name
from repro.core.priors import Priors, default_priors
from repro.driver.checkpoint import (
    STAGES,
    Checkpoint,
    append_task_record,
    entry_from_dict,
    entry_to_dict,
    load_checkpoint,
    load_task_journal,
    save_checkpoint,
    task_journal_path,
)
from repro.driver.merge import dedup_catalog, merge_catalogs
from repro.driver.pool import WorkerPool
from repro.driver.shards import ShardedCatalog
from repro.envvars import env_flag, env_int, env_raw
from repro.knobs import knob
from repro.parallel import ParallelRegionConfig, optimize_region_parallel
from repro.partition import Region, Task, generate_tasks
from repro.perf.counters import Counters
from repro.perf.driver import DriverReport
from repro.pgas import TRANSPORT_NAMES, make_transport
from repro.photo import PhotoConfig, run_photo
from repro.sched import Dtree, DtreeConfig
from repro.survey.image import Image
from repro.survey.io import FieldPrefetcher, field_metadata, save_field

__all__ = [
    "DriverConfig",
    "DriverResult",
    "TaskOutcome",
    "images_for_region",
    "run_pipeline",
    "seed_catalog_from_fields",
    "survey_bounds",
]

#: Environment variable consulted when ``DriverConfig.executor`` is None —
#: lets CI force every driver run onto the process executor.
EXECUTOR_ENV_VAR = "REPRO_DRIVER_EXECUTOR"

#: Environment variable consulted when neither ``DriverConfig`` nor the
#: parallel config sets a lockstep ELBO batch size — lets CI force every
#: source optimization through the batched evaluation path.
ELBO_BATCH_ENV_VAR = "REPRO_ELBO_BATCH"

#: Environment variable consulted when ``DriverConfig.race_detect`` is None
#: — lets CI run any driver pipeline under the shadow-transport race
#: detector without touching the config.
RACE_DETECT_ENV_VAR = "REPRO_RACE_DETECT"

#: Environment variable consulted when ``DriverConfig.verify_schedule`` is
#: None — pre-execution static verification of every Cyclades schedule.
VERIFY_SCHEDULE_ENV_VAR = "REPRO_VERIFY_SCHEDULE"

#: Environment variable consulted when ``DriverConfig.numeric_check`` is
#: None — lets CI run any driver pipeline under the runtime float
#: sanitizer without touching the config.
NUMERIC_CHECK_ENV_VAR = "REPRO_NUMERIC_CHECK"

#: Environment variable consulted when ``DriverConfig.pgas_transport`` is
#: None — lets CI force every driver run onto one PGAS transport (e.g. the
#: socket tier-1 leg).
PGAS_TRANSPORT_ENV_VAR = "REPRO_PGAS_TRANSPORT"

_EXECUTORS = ("thread", "process")

#: Unique per-stage epochs for pool-worker result attribution: a collector
#: must never mistake a straggler message from an earlier (possibly
#: failed) stage for one of its own.
_STAGE_EPOCH = itertools.count(1)


@dataclass
class DriverConfig:
    """Knobs of the end-to-end driver.

    ``n_nodes`` node-workers pull task batches from the Dtree; each task
    internally runs ``parallel.n_threads`` Cyclades threads — the driver's
    analogue of the paper's processes-per-node x threads-per-process layout.

    Every field carries an explicit provenance declaration
    (:func:`repro.knobs.knob`): ``fingerprinted`` knobs are part of
    :func:`_fingerprint`, the rest are machine-checked *not* to be (the
    KNOB3xx rules of ``python -m repro.analysis``) and fuzzer-pinned to be
    result-invariant (``tests/test_provenance.py``).
    """

    #: Node-workers pulling from the Dtree (the "nodes" of level two).
    n_nodes: int = knob(2, provenance="scheduling")
    #: Node-worker executor: ``"thread"`` or ``"process"``; ``None`` reads
    #: :data:`EXECUTOR_ENV_VAR`, defaulting to ``"thread"``.  Results are
    #: identical either way; only the memory/parallelism model changes.
    executor: str | None = knob(None, provenance="scheduling")
    #: Start method for process node-workers ("spawn" works everywhere and
    #: proves nothing leaks through fork; "fork" starts faster on Linux).
    mp_start_method: str = knob("spawn", provenance="scheduling")
    #: PGAS transport backing the sharded catalog, one of
    #: :data:`repro.pgas.TRANSPORT_NAMES`.  ``None`` reads
    #: :data:`PGAS_TRANSPORT_ENV_VAR`, then defaults by executor:
    #: ``"local"`` for thread workers, ``"shared_memory"`` for process
    #: workers.  ``"socket"`` serves the windows over TCP so workers can
    #: span real machines; ``"mpi"`` needs mpi4py.  Pure plumbing:
    #: catalogs are bit-identical across transports.
    pgas_transport: str | None = knob(None, provenance="scheduling")
    #: Journal per-task durable progress while a stage runs (needs
    #: ``checkpoint_path``): each completed Cyclades task appends its
    #: result rows to an fsynced journal, and a killed run resumes
    #: *mid-stage* — journaled tasks replay, the rest re-execute, and the
    #: final catalog is bit-for-bit the uninterrupted one's.
    task_checkpoint: bool = knob(True, provenance="scheduling")
    #: Fault injection (tests): the process node-worker executing this
    #: task id hard-exits right before reporting it — after the catalog
    #: write, the worst window — exactly once per run, so the retry on a
    #: surviving worker completes.  Ignored by the thread executor
    #: (killing a thread would kill the run).
    fault_kill_task: int | None = knob(None, provenance="scheduling")
    #: Fault injection (tests): abort the stage (simulated hard crash of
    #: the whole run) once this many tasks completed in it — the setup
    #: half of every resume-from-mid-stage test.
    fault_abort_after: int | None = knob(None, provenance="scheduling")
    #: Target bright-pixel weight per region (task granularity).
    target_weight: float = knob(40.0, provenance="fingerprinted")
    #: Run the shifted second-stage partition (paper Section IV-A).
    two_stage: bool = knob(True, provenance="fingerprinted")
    #: Dedup radius (pixels) for cross-field seed merging and final merge.
    dedup_radius: float = knob(2.0, provenance="fingerprinted")
    #: Extra margin (pixels) when matching image footprints to task regions,
    #: so patches of border sources still find their pixels.
    image_margin: float = knob(16.0, provenance="fingerprinted")
    #: Catalog sources within this many pixels outside a task's region are
    #: rendered into its model images as a frozen halo — without it, a
    #: source near a region border slides toward its unmodeled neighbor's
    #: flux and the fit corrupts.  The margin box is closed on both sides.
    halo_margin: float = knob(16.0, provenance="fingerprinted")
    #: Re-read the halo from the live working catalog at each optimization
    #: pass instead of the stage-start snapshot, so boundary sources see
    #: their neighbors' freshest parameters.  Costs reproducibility:
    #: results then depend on task completion order, so kill/resume no
    #: longer reproduces a run bit-for-bit (default keeps snapshot
    #: semantics).
    halo_refresh: bool = knob(False, provenance="fingerprinted")
    #: Task ids granted per Dtree request.
    max_batch: int = knob(2, provenance="scheduling")
    #: Tasks peeked ahead per Dtree request to drive field prefetching.
    prefetch_lookahead: int = knob(4, provenance="scheduling")
    #: Loaded on-disk fields kept per worker (LRU).
    field_cache_capacity: int = knob(16, provenance="scheduling")
    photo: PhotoConfig = knob(default_factory=PhotoConfig,
                              provenance="fingerprinted")
    parallel: ParallelRegionConfig = knob(
        default_factory=ParallelRegionConfig, provenance="fingerprinted")
    dtree: DtreeConfig = knob(default_factory=DtreeConfig,
                              provenance="scheduling")
    #: ELBO evaluation backend for every source optimization in the run:
    #: ``"fused"`` (compile-once analytic kernel, the production default)
    #: or ``"taylor"`` (the reference oracle).  ``None`` defers to
    #: ``parallel.joint.single.backend``, then the ``REPRO_ELBO_BACKEND``
    #: environment variable, then the front end's default.  The driver
    #: resolves this once up front and pins the result into the per-task
    #: optimizer config, so process workers and resumed runs can never pick
    #: a different backend than the checkpoint fingerprint recorded.
    elbo_backend: str | None = knob(None, provenance="fingerprinted")
    #: Sources per lockstep ELBO evaluation batch inside each Cyclades
    #: thread assignment (see ``ParallelRegionConfig.elbo_batch_size``).
    #: ``None`` defers to ``parallel.elbo_batch_size``, then the
    #: ``REPRO_ELBO_BATCH`` environment variable; the resolved value is
    #: pinned into the parallel config up front (so process workers inherit
    #: it through the pickled config) and lands in the checkpoint
    #: fingerprint alongside the backend.  Catalogs are bit-for-bit
    #: identical whatever the batch size — an invariant the test suite
    #: enforces rather than assumes, which is why the knob is fingerprinted
    #: like a result-affecting one.
    elbo_batch_size: int | None = knob(None, provenance="fingerprinted")
    #: Kernel execution target for the fused backend's stacked sweeps:
    #: ``"numpy"`` (the bit-for-bit reference and default), ``"array_api"``,
    #: or ``"numba"`` (see :mod:`repro.core.kernel_targets`).  ``None``
    #: defers to ``parallel.joint.single.kernel_target``, then the
    #: ``REPRO_KERNEL_TARGET`` environment variable, then the default.
    #: Resolved and pinned once up front like ``elbo_backend`` and
    #: checkpoint-fingerprinted: non-default targets promise tolerance
    #: parity only (their reductions re-associate), so a resumed run must
    #: never silently switch targets mid-stream.
    kernel_target: str | None = knob(None, provenance="fingerprinted")
    #: Run the whole pipeline under the shadow-transport race detector
    #: (:mod:`repro.analysis.race`): every one-sided catalog access and
    #: every Cyclades patch write is tagged with its (actor, logical epoch)
    #: and cross-checked for same-epoch overlap between different actors.
    #: Findings land in ``DriverReport.race_reports``.  ``None`` reads
    #: :data:`RACE_DETECT_ENV_VAR`.  Observational only: results are
    #: bit-identical with it on or off, so it is not fingerprinted.
    race_detect: bool | None = knob(None, provenance="observational")
    #: Statically verify every Cyclades pass's batches *before executing
    #: them* with the independent checker (:mod:`repro.analysis.schedule`),
    #: raising on any cross-thread patch overlap or split component.
    #: ``None`` reads :data:`VERIFY_SCHEDULE_ENV_VAR`.  Observational only.
    verify_schedule: bool | None = knob(None, provenance="observational")
    #: Run the whole pipeline under the runtime float sanitizer
    #: (:mod:`repro.analysis.numeric`): every ELBO evaluation and
    #: trust-region step is checked for non-finite values, overflow,
    #: asymmetric Hessian blocks, and catastrophic cancellation, with
    #: findings attributed (source, lane, term, stage, actor) in
    #: ``DriverReport.numeric_reports``.  ``None`` reads
    #: :data:`NUMERIC_CHECK_ENV_VAR`.  Observational only: results are
    #: bit-identical with it on or off, so it is not fingerprinted.
    numeric_check: bool | None = knob(None, provenance="observational")
    #: JSON checkpoint file; ``None`` disables checkpointing.  The working
    #: catalog checkpoints as ``n_nodes`` per-rank shard files.
    checkpoint_path: str | None = knob(None, provenance="scheduling")
    #: Stop (return) right after this stage completes and checkpoints —
    #: simulates a killed run for resume testing, and supports staged
    #: operation (e.g. seed on one machine, optimize on another).
    stop_after: str | None = knob(None, provenance="scheduling")


def _resolve_executor(config: DriverConfig) -> str:
    mode = config.executor
    if mode is None:
        mode = env_raw(EXECUTOR_ENV_VAR) or "thread"
    if mode not in _EXECUTORS:
        raise ValueError(
            "executor must be one of %r, got %r" % (_EXECUTORS, mode)
        )
    return mode


def _resolve_pgas_transport(config: DriverConfig, executor: str) -> str:
    """The PGAS transport name a run will use: config wins, then the
    environment, then an executor-appropriate default.  The in-process
    transport cannot back process workers (nothing would be shared), so
    that combination is rejected loudly rather than silently upgraded."""
    name = config.pgas_transport
    if name is None:
        name = env_raw(PGAS_TRANSPORT_ENV_VAR) or None
    if name is None:
        return "shared_memory" if executor == "process" else "local"
    if name not in TRANSPORT_NAMES:
        raise ValueError(
            "pgas_transport must be one of %r, got %r"
            % (TRANSPORT_NAMES, name)
        )
    if executor == "process" and name == "local":
        raise ValueError(
            "the in-process 'local' transport cannot back process "
            "node-workers; use shared_memory, socket, or mpi"
        )
    return name


def _resolve_elbo_batch_size(config: DriverConfig) -> int | None:
    """The lockstep evaluation batch size a run will use: an explicit
    ``DriverConfig.elbo_batch_size`` wins, then the parallel config's own
    field, then :data:`ELBO_BATCH_ENV_VAR`; ``None``/``1`` means the scalar
    per-source path."""
    size = config.elbo_batch_size
    if size is None:
        size = config.parallel.elbo_batch_size
    if size is None:
        size = env_int(ELBO_BATCH_ENV_VAR)
    if size is not None and size < 1:
        raise ValueError(
            "elbo_batch_size must be a positive integer, got %r" % (size,)
        )
    return size


def _pin_elbo_backend(config: DriverConfig) -> DriverConfig:
    """Resolve the ELBO backend and batch size once and pin them through
    the config tree.

    Backend precedence: ``config.elbo_backend``, then the single-source
    optimizer's own ``backend`` field, then the ``REPRO_ELBO_BACKEND``
    environment variable / default.  After this the nested
    ``OptimizeConfig.backend`` is always a concrete name, so the
    fingerprint (which recurses into ``config.parallel``) records the
    backend that actually runs, and process node-workers inherit it through
    the pickled config instead of re-reading their own environment.  The
    lockstep batch size is resolved the same way
    (:func:`_resolve_elbo_batch_size`) and pinned into
    ``parallel.elbo_batch_size``, and the kernel execution target
    (``config.kernel_target``, then ``single.kernel_target``, then
    ``REPRO_KERNEL_TARGET``/default) is validated *by name* — without
    importing the target's module, so pinning never requires the optional
    dependency — and pinned into ``single.kernel_target``.
    """
    joint = config.parallel.joint
    backend = resolve_backend_name(
        config.elbo_backend
        if config.elbo_backend is not None
        else joint.single.backend
    )
    batch_size = _resolve_elbo_batch_size(config)
    explicit_target = (
        config.kernel_target
        if config.kernel_target is not None
        else joint.single.kernel_target
    )
    if explicit_target is None and not getattr(
        get_backend(backend), "supports_kernel_targets", False
    ):
        # The REPRO_KERNEL_TARGET default only applies to backends with an
        # execution-target concept; pinning it onto the Taylor oracle would
        # turn an environment default into a hard config error there.  An
        # *explicit* target with such a backend stays pinned and is
        # rejected loudly at evaluation time.
        target = None
    else:
        target = resolve_kernel_target_name(explicit_target)
    return replace(
        config,
        elbo_backend=backend,
        elbo_batch_size=batch_size,
        kernel_target=target,
        parallel=replace(
            config.parallel,
            elbo_batch_size=batch_size,
            joint=replace(joint, single=replace(
                joint.single, backend=backend, kernel_target=target)),
        ),
    )


def _resolve_opt_flag(value: bool | None, env_var: str) -> bool:
    if value is not None:
        return bool(value)
    return env_flag(env_var)


def _pin_analysis_flags(config: DriverConfig) -> DriverConfig:
    """Resolve the race-detect / verify-schedule opt-ins once (config wins,
    then environment) and pin the booleans through the config tree, so
    process node-workers inherit them through the pickled config instead of
    re-reading their own environment — the same resolve-once discipline as
    :func:`_pin_elbo_backend`."""
    race = _resolve_opt_flag(config.race_detect, RACE_DETECT_ENV_VAR)
    verify = _resolve_opt_flag(config.verify_schedule,
                               VERIFY_SCHEDULE_ENV_VAR)
    numeric = _resolve_opt_flag(config.numeric_check, NUMERIC_CHECK_ENV_VAR)
    return replace(
        config,
        race_detect=race,
        verify_schedule=verify,
        numeric_check=numeric,
        parallel=replace(config.parallel, race_detect=race,
                         verify_schedule=verify, numeric_check=numeric),
    )


@dataclass
class TaskOutcome:
    """Per-task execution record (diagnostics; not checkpointed)."""

    task_id: int
    stage: int
    worker: int
    n_sources: int
    elbo: float
    seconds: float


@dataclass
class DriverResult:
    """Everything a driver run produces.

    When the run stopped early (``config.stop_after``), ``catalog`` holds
    the current working catalog — optimized through the completed stages but
    not finalized — and ``stopped_early`` is True.
    """

    catalog: Catalog
    seed_catalog: Catalog
    stage_elbo: dict[str, float]
    report: DriverReport
    counters: dict[str, float]
    outcomes: list[TaskOutcome]
    #: Stages loaded from the checkpoint instead of executed.
    resumed_stages: list[str]
    stopped_early: bool = False


# ---------------------------------------------------------------------------
# Geometry helpers


def survey_bounds(fields: list[list[Image]]) -> Region:
    """Bounding region of every image footprint in the survey."""
    if not fields or not any(fields):
        raise ValueError("need at least one field with images")
    boxes = [im.sky_bounds() for images in fields for im in images]
    return _bounds_region(boxes)


def _bounds_region(boxes: list[tuple]) -> Region:
    eps = 1e-6  # upper edges are half-open; keep boundary sources inside
    return Region(
        min(b[0] for b in boxes), max(b[1] for b in boxes) + eps,
        min(b[2] for b in boxes), max(b[3] for b in boxes) + eps,
    )


def _box_touches_region(box: tuple, region: Region, margin: float) -> bool:
    x0, x1, y0, y1 = box
    return (
        region.x_min < x1 + margin
        and region.x_max > x0 - margin
        and region.y_min < y1 + margin
        and region.y_max > y0 - margin
    )


def images_for_region(
    fields: list[list[Image]], region: Region, margin: float
) -> list[Image]:
    """Every image whose footprint intersects ``region`` (with margin)."""
    return [
        im
        for images in fields
        for im in images
        if _box_touches_region(im.sky_bounds(), region, margin)
    ]


def _halo_indices(
    positions: np.ndarray, own: set, region: Region, margin: float
) -> list[int]:
    """Catalog indices inside the task's halo margin box, excluding its own
    sources.

    The box is closed on *both* sides: a neighbor sitting exactly on the
    far margin edge contributes its flux to border pixels just like one on
    the near edge, so a half-open upper bound would asymmetrically drop it.
    """
    if len(positions) == 0:
        return []
    x, y = positions[:, 0], positions[:, 1]
    mask = (
        (x >= region.x_min - margin) & (x <= region.x_max + margin)
        & (y >= region.y_min - margin) & (y <= region.y_max + margin)
    )
    return [int(j) for j in np.nonzero(mask)[0] if int(j) not in own]


# ---------------------------------------------------------------------------
# Field access: in-memory lists or on-disk files behind a prefetch thread


class _FieldStore:
    """Uniform access to a survey's fields, in-memory or on disk.

    Each element of ``fields`` is either a ``list[Image]`` (held as given)
    or a path to a ``.npz`` field file, loaded on demand through a
    :class:`FieldPrefetcher` so Dtree look-ahead hints overlap I/O with
    optimization.  Image footprints and shapes are cached as metadata on
    first load (and can be injected, so process workers skip the metadata
    pass the parent already did).
    """

    def __init__(self, fields: list, capacity: int = 16, metadata=None):
        if not fields:
            raise ValueError("need at least one field")
        self._specs = list(fields)
        self._paths = [f if isinstance(f, str) else None for f in fields]
        self._prefetcher = (
            FieldPrefetcher(capacity=capacity)
            if any(p is not None for p in self._paths) else None
        )
        #: Per field: list of per-image (sky_bounds, (h, w), band) triples.
        self._meta: list[list[tuple] | None] = [None] * len(fields)
        if metadata is not None:
            self._meta = [list(m) if m is not None else None for m in metadata]

    @property
    def n_fields(self) -> int:
        return len(self._specs)

    def field(self, i: int) -> list[Image]:
        spec = self._specs[i]
        if self._paths[i] is None:
            images = spec
        else:
            images = self._prefetcher.get(self._paths[i])
        if self._meta[i] is None:
            self._meta[i] = [
                (im.sky_bounds(), (im.height, im.width), im.band)
                for im in images
            ]
        return images

    def ensure_metadata(self) -> None:
        for i in range(self.n_fields):
            if self._meta[i] is None:
                if self._paths[i] is not None:
                    # Header-only peek: footprints and shapes without
                    # reading pixel data (the fingerprint/partition pass
                    # must not cost a full survey read).
                    self._meta[i] = field_metadata(self._paths[i])
                else:
                    self.field(i)

    def metadata(self) -> list:
        self.ensure_metadata()
        return [list(m) for m in self._meta]

    def field_shapes(self) -> list[list[int]]:
        self.ensure_metadata()
        return [[h, w] for m in self._meta for (_, (h, w), _) in m]

    def bounds(self) -> Region:
        self.ensure_metadata()
        return _bounds_region([b for m in self._meta for (b, _, _) in m])

    def field_indices_for_region(self, region: Region, margin: float) -> list[int]:
        """Fields with at least one image touching the region (metadata
        only — never triggers a load; used to build prefetch hints)."""
        self.ensure_metadata()
        return [
            i for i, m in enumerate(self._meta)
            if any(_box_touches_region(b, region, margin) for (b, _, _) in m)
        ]

    def images_for_region(self, region: Region, margin: float) -> list[Image]:
        self.ensure_metadata()
        out: list[Image] = []
        for i in self.field_indices_for_region(region, margin):
            out.extend(
                im for im in self.field(i)
                if _box_touches_region(im.sky_bounds(), region, margin)
            )
        return out

    def hint_fields(self, indices) -> None:
        if self._prefetcher is None:
            return
        paths = [self._paths[i] for i in indices if self._paths[i] is not None]
        if paths:
            self._prefetcher.hint(paths)

    def prefetch_stats(self) -> dict:
        if self._prefetcher is None:
            return {"prefetch_hits": 0, "prefetch_misses": 0,
                    "prefetched": 0, "prefetch_seconds": 0.0}
        return self._prefetcher.stats()

    def close(self) -> None:
        if self._prefetcher is not None:
            self._prefetcher.close()


# ---------------------------------------------------------------------------
# Stage 1: seeding


def seed_catalog_from_fields(
    fields: list, config: DriverConfig
) -> Catalog:
    """Run Photo per field and merge the per-field catalogs.

    Photo already reports sky coordinates (``detect_sources`` maps through
    the field WCS), so the per-field catalogs concatenate directly; the
    merge deduplicates sources detected by two overlapping fields.  Fields
    given as paths are loaded from disk one at a time — peak memory is one
    field, not the survey.
    """
    from repro.survey.io import load_field

    per_field = [
        run_photo(load_field(f) if isinstance(f, str) else f, config.photo)
        for f in fields
    ]
    return merge_catalogs(per_field, config.dedup_radius)


def _seed_catalog_from_store(store: _FieldStore, config: DriverConfig) -> Catalog:
    per_field = [run_photo(store.field(i), config.photo)
                 for i in range(store.n_fields)]
    return merge_catalogs(per_field, config.dedup_radius)


# ---------------------------------------------------------------------------
# Stages 2+3+4: Dtree-scheduled two-stage optimization


def _fingerprint(store: _FieldStore, config: DriverConfig) -> dict:
    """Identity of a run for checkpoint compatibility checks.

    Covers every knob that affects *results*: the inputs, the partition and
    merge parameters, the halo/image margins and refresh policy, the Photo
    thresholds, and the full parallel/joint/single optimizer configuration
    (``asdict`` recurses into nested dataclasses — including the resolved
    ELBO backend, which :func:`_pin_elbo_backend` writes into
    ``parallel.joint.single.backend`` before this runs, so a checkpoint
    taken under one backend is never resumed under the other).  Purely
    scheduling-side knobs (``n_nodes``, ``executor``, ``dtree``,
    ``max_batch``, prefetch depth) are deliberately excluded: task results
    are independent of completion order and of the memory model, so a run
    may legitimately resume with a different worker layout or executor.
    """
    return {
        "n_fields": store.n_fields,
        "field_shapes": store.field_shapes(),
        "target_weight": config.target_weight,
        "two_stage": config.two_stage,
        "dedup_radius": config.dedup_radius,
        "image_margin": config.image_margin,
        "halo_margin": config.halo_margin,
        "halo_refresh": config.halo_refresh,
        "photo": dataclasses.asdict(config.photo),
        "parallel": _parallel_fingerprint(config.parallel),
        # Also recorded inside parallel.joint.single.backend; named at the
        # top level so fingerprint mismatches across default-backend changes
        # are legible in the checkpoint file itself.
        "elbo_backend": config.elbo_backend,
        # Result-neutral by hard invariant (batched == scalar bit-for-bit,
        # tested), but fingerprinted anyway — also inside
        # parallel.elbo_batch_size — so a resumed run's evaluation layout
        # is recorded next to its backend.
        "elbo_batch_size": config.elbo_batch_size,
        # Also recorded inside parallel.joint.single.kernel_target.
        # Result-affecting across non-default targets (they promise
        # tolerance parity only — reductions re-associate), so resume
        # refuses across targets.
        "kernel_target": config.kernel_target,
    }


def _parallel_fingerprint(parallel: ParallelRegionConfig) -> dict:
    d = dataclasses.asdict(parallel)
    # Observational-only knobs: detection and verification never change
    # results (the detector's job is to *prove* that), so a checkpointed
    # run may legitimately resume with them toggled — like the excluded
    # scheduling-side knobs.
    d.pop("race_detect", None)
    d.pop("verify_schedule", None)
    d.pop("numeric_check", None)
    # Batch coalescing is an execution strategy (bit-for-bit invariant,
    # tested): resuming with it toggled is as legitimate as resuming with
    # a different executor.
    d.pop("coalesce_batches", None)
    return d


def _task_seed_config(config: DriverConfig, task: Task) -> ParallelRegionConfig:
    # Per-task deterministic seed: results must not depend on which worker
    # runs the task or in what order tasks complete.
    return replace(
        config.parallel,
        seed=config.parallel.seed + 7919 * task.task_id + task.stage,
    )


def _execute_task(
    task: Task,
    halo_idx: list[int],
    base: ShardedCatalog,
    working: ShardedCatalog,
    store: _FieldStore,
    priors: Priors,
    config: DriverConfig,
    counters: Counters,
):
    """Run one task against the sharded catalog; returns the region result,
    or ``None`` when the task had nothing to optimize.

    This is the single execution path both executors share: read own
    sources and halo rows one-sidedly from the stage-start snapshot
    (``base``), optimize, put result rows into the live ``working`` array.
    With ``halo_refresh`` the halo is instead re-read from ``working`` at
    every pass, and each pass's results are published immediately so
    neighboring tasks see them.
    """
    images = store.images_for_region(task.region, config.image_margin)
    entries = base.get_entries(task.source_indices)
    if not images or not entries:
        return None
    pconfig = _task_seed_config(config, task)
    if config.halo_refresh:
        result = None
        current = entries
        for p in range(pconfig.n_passes):
            halo = working.get_entries(halo_idx)
            sub = replace(pconfig, n_passes=1, seed=pconfig.seed + 104729 * p)
            result = optimize_region_parallel(
                images, current, priors, sub, counters, frozen_entries=halo,
            )
            current = list(result.catalog)
            working.put_entries(task.source_indices, current)
        return result
    halo = base.get_entries(halo_idx)
    result = optimize_region_parallel(
        images, entries, priors, pconfig, counters, frozen_entries=halo,
    )
    working.put_entries(task.source_indices, list(result.catalog))
    return result


def _comm_totals(*recorders) -> dict:
    return {
        "rma_gets": sum(r.stats.n_get for r in recorders),
        "rma_puts": sum(r.stats.n_put for r in recorders),
        "rma_bytes": sum(r.stats.total_bytes for r in recorders),
        "rma_remote": sum(r.stats.remote_fraction_ops for r in recorders),
    }


def _dict_delta(current: dict, previous: dict) -> dict:
    return {k: v - previous.get(k, 0) for k, v in current.items()}


class _StageRunnerBase:
    """Shared bookkeeping of the two executors."""

    def __init__(self, store, working, priors, config, counters):
        self.store: _FieldStore = store
        self.working: ShardedCatalog = working
        self.priors = priors
        self.config: DriverConfig = config
        self.counters: Counters = counters
        self.outcomes: list[TaskOutcome] = []
        #: Task-granular checkpoint journal for the stage being run; set by
        #: the driver before each ``run`` when task checkpointing is on.
        self.journal_path: str | None = None
        self._completed_in_stage = 0
        # Baseline at runner creation (i.e. after seeding): the report's
        # prefetch hit/miss numbers cover the optimization stages only, so
        # the thread executor (parent store) and the process executor
        # (per-worker stores) measure the same thing.
        self._prefetch_applied: dict = dict(store.prefetch_stats())
        # One detector for the runner's lifetime (it spans stages); the
        # report only ever receives each finding once (_sync_race_reports).
        self.race_detector = None
        self._race_synced = 0
        if config.race_detect:
            from repro.analysis.race import RaceDetector

            self.race_detector = RaceDetector()
        # Same lifetime/watermark discipline for the numeric sanitizer: one
        # sink spanning stages, findings shipped to the report exactly once.
        self.numeric_sink = None
        self._numeric_shipped: set[tuple] = set()
        if config.numeric_check:
            from repro.analysis.numeric import NumericSanitizer

            self.numeric_sink = NumericSanitizer()

    def _sync_numeric_reports(self, report: DriverReport) -> None:
        """Append sanitizer findings made since the last sync to the report
        (checkpoint-resumed reports already carry earlier stages').  The
        sink's report list is sorted rather than arrival-ordered, so the
        additive guarantee uses the dedup key, not a count watermark."""
        if self.numeric_sink is None:
            return
        for r in self.numeric_sink.reports:
            d = r.as_dict()
            key = (d["kind"], d["stage"], d["term"], d["source"], d["lane"],
                   tuple(d["actor"]))
            if key in self._numeric_shipped:
                continue
            self._numeric_shipped.add(key)
            report.numeric_reports.append(d)

    def _sync_race_reports(self, report: DriverReport) -> None:
        """Append findings made since the last sync to the report.

        A checkpoint-resumed report already carries earlier stages'
        findings; the consumed-count watermark keeps this additive."""
        if self.race_detector is None:
            return
        found = self.race_detector.reports
        new = found[self._race_synced:]
        self._race_synced = len(found)
        report.race_reports.extend(r.as_dict() for r in new)

    def _lookahead_hint(self, dtree: Dtree, worker: int, batch: list[int],
                        tasks: list[Task]) -> list[int]:
        """Field indices the current batch plus the Dtree look-ahead will
        need — the prefetch hint."""
        config = self.config
        tids = list(batch) + dtree.peek(worker, config.prefetch_lookahead)
        out: list[int] = []
        for tid in tids:
            for i in self.store.field_indices_for_region(
                tasks[tid].region, config.image_margin
            ):
                if i not in out:
                    out.append(i)
        return out

    def _apply_prefetch_stats(self, report: DriverReport, stats: dict) -> None:
        delta = _dict_delta(stats, self._prefetch_applied)
        self._prefetch_applied = dict(stats)
        report.prefetch_hits += int(delta.get("prefetch_hits", 0))
        report.prefetch_misses += int(delta.get("prefetch_misses", 0))
        report.prefetch_seconds += float(delta.get("prefetch_seconds", 0.0))

    def _apply_replay(self, tasks: list[Task], replay, report: DriverReport,
                      stage_elbo: list) -> set:
        """Apply journaled task results to the working catalog and account
        for them; returns the replayed task ids.

        MUST run *after* the stage-start snapshot was taken: remaining
        tasks read their halos from the snapshot, which has to hold
        pre-stage values for bit parity with an uninterrupted run.
        Records that do not match a task of this stage (stale journal,
        corrupt tail) are ignored — those tasks simply re-execute.
        """
        if not replay:
            return set()
        by_id = {t.task_id: t for t in tasks}
        replayed: set[int] = set()
        for rec in replay:
            tid = rec.get("task_id")
            task = by_id.get(tid)
            if task is None or tid in replayed:
                continue
            indices = [int(i) for i in rec.get("indices", [])]
            rows = rec.get("rows", [])
            if indices != [int(i) for i in task.source_indices] \
                    or len(rows) != len(indices):
                continue
            self.working.put_entries(
                indices, [entry_from_dict(r) for r in rows])
            replayed.add(tid)
            elbo = float(rec.get("elbo", 0.0))
            stage_elbo[0] += elbo
            report.n_source_updates += (
                task.n_sources * self.config.parallel.n_passes
            )
            self.outcomes.append(TaskOutcome(
                task_id=tid, stage=task.stage, worker=-1,
                n_sources=task.n_sources, elbo=elbo, seconds=0.0,
            ))
        if replayed:
            report.recoveries.append({
                "kind": "task_replay",
                "stage": int(tasks[0].stage),
                "n_tasks": len(replayed),
            })
        return replayed

    def _journal_task(self, task: Task, elbo: float) -> None:
        """Durably record one completed task: its result rows are read
        back from the working catalog (safe — only this task writes them)
        so both executors share one journaling path."""
        if self.journal_path is None:
            return
        rows = self.working.get_entries(task.source_indices)
        append_task_record(self.journal_path, {
            "task_id": int(task.task_id),
            "stage": int(task.stage),
            "n_sources": int(task.n_sources),
            "elbo": float(elbo),
            "indices": [int(i) for i in task.source_indices],
            "rows": [entry_to_dict(e) for e in rows],
        })

    def _count_completed(self) -> None:
        """Fault injection: simulate a hard crash of the run once
        ``fault_abort_after`` tasks completed in this stage."""
        self._completed_in_stage += 1
        abort_after = self.config.fault_abort_after
        if abort_after is not None and self._completed_in_stage >= abort_after:
            raise RuntimeError(
                "fault injection: simulated crash after %d completed tasks"
                % self._completed_in_stage
            )

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass


class _ThreadStageRunner(_StageRunnerBase):
    """Node-workers as threads in this address space (the PR-1 layout).

    Cheap to start and fine when the NumPy kernels release the GIL, but
    Python-level work serializes — the limitation the process executor
    removes.
    """

    def __init__(self, store, working, priors, config, counters):
        super().__init__(store, working, priors, config, counters)
        self._lock = threading.Lock()

    def run(self, tasks: list[Task], report: DriverReport,
            replay=None) -> float:
        """Run every task in ``tasks``; returns the stage's total ELBO.
        ``replay`` holds journaled records of tasks a killed run already
        completed — applied instead of re-executed."""
        if not tasks:
            return 0.0
        config = self.config
        self._completed_in_stage = 0
        # Tasks read entries and halos from the stage-start snapshot, never
        # from live results of concurrent tasks: results must not depend on
        # task completion order (and a resumed run must reproduce them).
        # The snapshot is taken *before* replayed rows land in the working
        # catalog: a re-executed task whose halo contains a replayed source
        # must see its pre-stage value, exactly as the original run did.
        base = ShardedCatalog(self.working.n_rows, self.working.n_ranks)
        base.copy_rows_from(self.working)
        positions = base.positions()
        stage_elbo = [0.0]
        replayed = self._apply_replay(tasks, replay, report, stage_elbo)
        report.n_tasks += len(tasks)
        run_tasks = [t for t in tasks if t.task_id not in replayed]
        if not run_tasks:
            return stage_elbo[0]
        tasks = run_tasks
        dtree = Dtree(config.n_nodes, len(tasks), config.dtree)
        sched_s = [0.0] * config.n_nodes
        task_s = [0.0] * config.n_nodes
        errors: list[BaseException] = []

        def node_worker(w: int) -> None:
            try:
                detector = self.race_detector
                if detector is not None:
                    base_view, base_rec, base_shadow = base.shadow_view(
                        w, detector, "cat-base")
                    work_view, work_rec, work_shadow = \
                        self.working.shadow_view(w, detector, "cat-work")
                else:
                    base_view, base_rec = base.recording_view(w)
                    work_view, work_rec = self.working.recording_view(w)
                    base_shadow = work_shadow = None
                while True:
                    t0 = time.perf_counter()
                    batch = dtree.request(w, max_batch=config.max_batch)
                    sched_s[w] += time.perf_counter() - t0
                    if not batch:
                        break
                    hinted_version = dtree.version
                    self.store.hint_fields(
                        self._lookahead_hint(dtree, w, batch, tasks)
                    )
                    for pos, tid in enumerate(batch):
                        if dtree.version != hinted_version:
                            # The schedule moved under us since the hint
                            # (a sibling's grant drained pools we peeked):
                            # re-peek at dispatch so the prefetcher tracks
                            # the fields this worker will actually need,
                            # not the ones it would have before stealing.
                            hinted_version = dtree.version
                            self.store.hint_fields(self._lookahead_hint(
                                dtree, w, batch[pos:], tasks))
                        t1 = time.perf_counter()
                        task = tasks[tid]
                        halo_idx = _halo_indices(
                            positions, set(task.source_indices),
                            task.region, config.halo_margin,
                        )
                        if base_shadow is not None:
                            # Concurrently scheduled tasks of one stage
                            # share a logical epoch: any same-epoch catalog
                            # overlap between tasks is a race.
                            actor = ("task", task.task_id)
                            epoch = ("stage", task.stage)
                            base_shadow.set_task(actor, epoch)
                            work_shadow.set_task(actor, epoch)
                        result = _execute_task(
                            task, halo_idx, base_view, work_view, self.store,
                            self.priors, config, self.counters,
                        )
                        seconds = time.perf_counter() - t1
                        task_s[w] += seconds
                        if result is None:
                            continue
                        if detector is not None:
                            detector.absorb(result.race_reports)
                        if self.numeric_sink is not None:
                            self.numeric_sink.absorb(result.numeric_reports)
                        with self._lock:
                            stage_elbo[0] += result.elbo_total
                            report.n_source_updates += (
                                task.n_sources * config.parallel.n_passes
                            )
                            self.outcomes.append(TaskOutcome(
                                task_id=task.task_id,
                                stage=task.stage,
                                worker=w,
                                n_sources=task.n_sources,
                                elbo=result.elbo_total,
                                seconds=seconds,
                            ))
                            self._journal_task(task, result.elbo_total)
                            self._count_completed()
                with self._lock:
                    comm = _comm_totals(base_rec, work_rec)
                    report.add_worker_comm(w, **comm)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                with self._lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=node_worker, args=(w,), daemon=True)
            for w in range(config.n_nodes)
        ]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        report.wall_seconds += time.perf_counter() - t_start
        report.sched_seconds += sum(sched_s)
        report.task_seconds += sum(task_s)
        report.messages += dtree.stats["messages"]
        report.hops += dtree.stats["hops"]
        self._apply_prefetch_stats(report, self.store.prefetch_stats())
        self._sync_race_reports(report)
        self._sync_numeric_reports(report)
        return stage_elbo[0]


class _WorkerState:
    """Execution state a pool seat binds for one stage of one run.

    Built inside the worker process from a ``("bind", ...)`` message
    (:mod:`repro.driver.pool`): the field store, the one-sided views onto
    the snapshot and working catalogs (whose pickled transports attached
    this process to the parent's windows — shared-memory segments or
    socket clients), and the shadow/recording instrumentation.  ``epoch``
    tags every result message so the parent's collector can discard
    stragglers from an earlier bind.
    """

    def __init__(self, epoch: int, worker_id: int, fields: list,
                 metadata: list, priors: Priors, config: DriverConfig,
                 base: ShardedCatalog, working: ShardedCatalog,
                 fault_dir: str | None = None):
        self.epoch = epoch
        self.worker_id = worker_id
        self.priors = priors
        self.config = config
        self.fault_dir = fault_dir
        self._catalogs = (base, working)
        self.store = _FieldStore(fields, config.field_cache_capacity,
                                 metadata=metadata)
        self.access_log = self.base_shadow = self.work_shadow = None
        if config.race_detect:
            # Workers cannot see the parent's detector: record into a
            # local log, ship the (picklable) accesses with each result,
            # and let the parent's detector cross-check between workers.
            from repro.analysis.race import AccessLog

            self.access_log = AccessLog()
            self.base_view, self.base_rec, self.base_shadow = \
                base.shadow_view(worker_id, self.access_log, "cat-base")
            self.work_view, self.work_rec, self.work_shadow = \
                working.shadow_view(worker_id, self.access_log, "cat-work")
        else:
            self.base_view, self.base_rec = base.recording_view(worker_id)
            self.work_view, self.work_rec = working.recording_view(worker_id)
        self.prev_comm: dict = {}
        self.prev_prefetch: dict = {}

    def _maybe_die(self, task: Task) -> None:
        """Fault injection: hard-exit before reporting ``fault_kill_task``,
        at most once per run (the O_EXCL marker is the consumed token, so
        the retry on a surviving worker completes)."""
        config = self.config
        if (config.fault_kill_task is None
                or task.task_id != config.fault_kill_task
                or self.fault_dir is None):
            return
        marker = os.path.join(self.fault_dir,
                              "killed.%d" % int(task.task_id))
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # token consumed: this is the retry — survive
        os.close(fd)
        os._exit(17)

    def execute(self, task: Task, halo_idx: list[int], hint: list[int],
                result_q) -> None:
        config = self.config
        self.store.hint_fields(hint)
        counters = Counters()
        if self.base_shadow is not None:
            actor = ("task", task.task_id)
            epoch = ("stage", task.stage)
            self.base_shadow.set_task(actor, epoch)
            self.work_shadow.set_task(actor, epoch)
        t0 = time.perf_counter()
        result = _execute_task(
            task, halo_idx, self.base_view, self.work_view, self.store,
            self.priors, config, counters,
        )
        seconds = time.perf_counter() - t0
        self._maybe_die(task)
        comm = _comm_totals(self.base_rec, self.work_rec)
        prefetch = self.store.prefetch_stats()
        result_q.put((
            "done", self.epoch, self.worker_id, task.task_id, task.stage,
            result is not None, task.n_sources,
            result.elbo_total if result is not None else 0.0,
            seconds, counters.snapshot(),
            _dict_delta(comm, self.prev_comm),
            _dict_delta(prefetch, self.prev_prefetch),
            list(result.race_reports) if result is not None else [],
            self.access_log.drain() if self.access_log is not None else [],
            list(result.numeric_reports) if result is not None else [],
        ))
        self.prev_comm, self.prev_prefetch = comm, prefetch

    def close(self) -> None:
        # Join the prefetcher thread and drop its cache (daemon threads
        # die abruptly otherwise, and an error path should not strand a
        # mid-flight field load), then detach the catalog windows so a
        # released seat stops pinning segments the parent will unlink.
        self.store.close()
        for catalog in self._catalogs:
            transport = catalog.array.transport
            if hasattr(transport, "close"):
                transport.close()


class _ProcessStageRunner(_StageRunnerBase):
    """Node-workers as pool seats over pluggable PGAS windows.

    The parent keeps the Dtree and pumps batches to the pool's per-seat
    queues (one pump thread per seat, so the request/complete cadence
    matches the thread executor); workers access the catalog one-sidedly
    through the configured transport (shared-memory windows or socket RMA)
    and never see more of it than their tasks touch.  Seats come from an
    elastic :class:`~repro.driver.pool.WorkerPool` — either a private one
    or a caller-shared one reused across :func:`run_pipeline` calls — and
    are re-bound to this run's state at every stage.  A seat whose process
    dies mid-stage is recovered: its undispatched leaf pool is reclaimed
    into the Dtree, its in-flight tasks are re-dispatched to survivors,
    and the event is recorded in ``DriverReport.recoveries``.
    """

    def __init__(self, store, working, priors, config, counters,
                 fields_spec: list, pool: WorkerPool | None = None,
                 transport_name: str = "shared_memory"):
        super().__init__(store, working, priors, config, counters)
        self._scratch_dir: str | None = None
        self._closed = False
        self.pool = pool if pool is not None else \
            WorkerPool(config.mp_start_method)
        self._private_pool = pool is None
        self.transport_name = transport_name
        # The snapshot is only written between stages (no tasks in flight),
        # so it needs no rank locking even in halo_refresh mode.
        self.base = ShardedCatalog(
            working.n_rows, working.n_ranks,
            transport=make_transport(transport_name),
        )
        try:
            # Scratch space for this runner: spilled field files and the
            # fault-injection kill markers (consumed-once tokens).
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-driver-")
            # Workers must never hold the whole survey: spill in-memory
            # fields to temp field files once and ship paths, so each
            # worker's prefetcher loads only the fields its tasks touch
            # (on-disk fields ship as the paths they already are).
            if any(not isinstance(f, str) for f in fields_spec):
                spilled = []
                for i, spec in enumerate(fields_spec):
                    if isinstance(spec, str):
                        spilled.append(spec)
                    else:
                        path = os.path.join(
                            self._scratch_dir, "field%d.npz" % i
                        )
                        save_field(path, spec)
                        spilled.append(path)
                fields_spec = spilled
            self._fields_spec = fields_spec
            self.pool.ensure(config.n_nodes)
        except BaseException:
            # Partial construction must not leak segments, spilled files,
            # or blocked worker processes.
            self.close()
            raise

    def run(self, tasks: list[Task], report: DriverReport,
            replay=None) -> float:
        if not tasks:
            return 0.0
        config = self.config
        self._completed_in_stage = 0
        # Stage-start snapshot, taken *before* replayed rows land in the
        # working catalog (see _ThreadStageRunner.run for why).
        self.base.copy_rows_from(self.working)
        positions = self.base.positions()
        stage_elbo = [0.0]
        replayed = self._apply_replay(tasks, replay, report, stage_elbo)
        report.n_tasks += len(tasks)
        run_tasks = [t for t in tasks if t.task_id not in replayed]
        if not run_tasks:
            return stage_elbo[0]
        tasks = run_tasks
        task_by_id = {t.task_id: t for t in tasks}

        # Elastic sizing: never bind more seats than there are tasks, and
        # respawn/grow the pool to exactly what this stage needs.
        n = max(1, min(config.n_nodes, len(tasks)))
        self.pool.ensure(n)
        epoch = next(_STAGE_EPOCH)
        metadata = self.store.metadata()
        for w in range(n):
            self.pool.send(w, (
                "bind", epoch, w, self._fields_spec, metadata, self.priors,
                config, self.base, self.working, self._scratch_dir,
            ))

        dtree = Dtree(n, len(tasks), config.dtree)
        pending = [0] * n
        conds = [threading.Condition() for _ in range(n)]
        #: Per-seat map of task_id -> (task, halo_idx, hint) shipped but
        #: not yet reported done — what a dead seat's recovery re-dispatches.
        inflight: list[dict] = [{} for _ in range(n)]
        dead = [False] * n
        done_tids: set[int] = set()
        deaths = [0]
        active_pumps = [n]
        sched_s = [0.0] * n
        task_s = [0.0] * n
        errors: list[BaseException] = []
        failed = threading.Event()

        def fail(exc: BaseException) -> None:
            errors.append(exc)
            failed.set()
            for w in range(n):
                with conds[w]:
                    pending[w] = 0
                    conds[w].notify_all()

        def dispatch(s: int, task: Task, halo_idx, hint) -> None:
            with conds[s]:
                pending[s] += 1
                inflight[s][task.task_id] = (task, halo_idx, hint)
            self.pool.send(s, ("task", task, halo_idx, hint))

        def survivors_or_respawn(exclude: int | None = None) -> list[int]:
            """Live, usable seats — respawning dead ones (and re-binding
            them to this stage's state) when none survive, so a run on one
            node-worker can outlive that worker's death."""
            alive = [s for s in range(n)
                     if s != exclude and not dead[s] and self.pool.alive(s)]
            if alive:
                return alive
            for s in self.pool.ensure(n):
                dead[s] = False
                self.pool.send(s, (
                    "bind", epoch, s, self._fields_spec, metadata,
                    self.priors, config, self.base, self.working,
                    self._scratch_dir,
                ))
            return [s for s in range(n)
                    if not dead[s] and self.pool.alive(s)]

        def recover(w: int) -> None:
            """Seat ``w``'s process died: reclaim its undispatched work
            and re-dispatch its in-flight tasks to surviving seats (safe —
            a task that half-ran before the crash never reported done, so
            re-executing it against the immutable stage snapshot writes
            the same rows it would have)."""
            deaths[0] += 1
            if deaths[0] > max(2 * n, 4):
                fail(RuntimeError(
                    "process node-workers keep dying (%d deaths this "
                    "stage); giving up" % deaths[0]
                ))
                return
            dead[w] = True
            with conds[w]:
                items = list(inflight[w].items())
                inflight[w].clear()
                pending[w] = 0
                conds[w].notify_all()
            dtree.reclaim(w)
            report.recoveries.append({
                "kind": "worker_death",
                "stage": int(tasks[0].stage),
                "worker": int(w),
                "retried": sorted(tid for tid, _ in items),
            })
            survivors = survivors_or_respawn(exclude=w)
            if not survivors:
                fail(RuntimeError(
                    "process node-worker %d died and no node-workers "
                    "survive to take over its %d in-flight tasks"
                    % (w, len(items))
                ))
                return
            for i, (tid, item) in enumerate(items):
                dispatch(survivors[i % len(survivors)], *item)

        def drain_stranded() -> None:
            """Every pump exited and nothing is in flight, yet tasks
            remain: work reclaimed from a dead seat landed at the Dtree
            root *after* the surviving pumps saw an empty tree and
            returned.  Dispatch it directly, round-robin."""
            survivors = survivors_or_respawn()
            if not survivors:
                fail(RuntimeError(
                    "all process node-workers died with %d tasks "
                    "unfinished" % (len(tasks) - len(done_tids))
                ))
                return
            i = 0
            while True:
                batch = dtree.request(survivors[0],
                                      max_batch=config.max_batch)
                if not batch:
                    return
                hint = self._lookahead_hint(
                    dtree, survivors[0], batch, tasks)
                for tid in batch:
                    task = tasks[tid]
                    halo_idx = _halo_indices(
                        positions, set(task.source_indices),
                        task.region, config.halo_margin,
                    )
                    dispatch(survivors[i % len(survivors)],
                             task, halo_idx, hint)
                    i += 1

        def collect() -> None:
            total = len(tasks)
            while len(done_tids) < total and not failed.is_set():
                try:
                    msg = self.pool.result_q.get(timeout=0.2)
                except queue_mod.Empty:
                    for w in range(n):
                        if (not dead[w] and pending[w] > 0
                                and not self.pool.alive(w)):
                            recover(w)
                    if (not failed.is_set() and active_pumps[0] == 0
                            and sum(pending) == 0):
                        drain_stranded()
                    continue
                if msg[0] == "error":
                    _, w, msg_epoch, tb = msg
                    if msg_epoch == epoch:
                        fail(RuntimeError(
                            "process node-worker %d failed:\n%s" % (w, tb)
                        ))
                        return
                    continue  # pragma: no cover - stale straggler
                (_, msg_epoch, w, task_id, stage, executed, n_sources,
                 elbo, seconds, counter_delta, comm_delta, prefetch_delta,
                 region_races, accesses, region_numeric) = msg
                if msg_epoch != epoch:
                    # Straggler from an earlier bind (e.g. a stage that
                    # failed with results unconsumed): not this stage's.
                    continue
                first = task_id not in done_tids
                done_tids.add(task_id)
                with conds[w]:
                    inflight[w].pop(task_id, None)
                    pending[w] = max(0, pending[w] - 1)
                    conds[w].notify_all()
                if not first:
                    # A re-dispatched task whose first execution reported
                    # after all: identical result (deterministic against
                    # the same snapshot), already accounted — drop it.
                    continue
                if self.race_detector is not None:
                    self.race_detector.absorb(region_races)
                    self.race_detector.ingest(accesses)
                if self.numeric_sink is not None:
                    self.numeric_sink.absorb(region_numeric)
                for name, value in counter_delta.items():
                    self.counters.add(name, value)
                report.add_worker_comm(w, **comm_delta)
                report.prefetch_hits += int(
                    prefetch_delta.get("prefetch_hits", 0))
                report.prefetch_misses += int(
                    prefetch_delta.get("prefetch_misses", 0))
                report.prefetch_seconds += float(
                    prefetch_delta.get("prefetch_seconds", 0.0))
                task_s[w] += seconds
                if executed:
                    stage_elbo[0] += elbo
                    report.n_source_updates += (
                        n_sources * config.parallel.n_passes
                    )
                    self.outcomes.append(TaskOutcome(
                        task_id=task_id, stage=stage, worker=w,
                        n_sources=n_sources, elbo=elbo, seconds=seconds,
                    ))
                    try:
                        self._journal_task(task_by_id[task_id], elbo)
                        self._count_completed()
                    except BaseException as exc:  # noqa: BLE001
                        fail(exc)
                        return

        def pump(w: int) -> None:
            try:
                while not failed.is_set() and not dead[w]:
                    t0 = time.perf_counter()
                    batch = dtree.request(w, max_batch=config.max_batch)
                    sched_s[w] += time.perf_counter() - t0
                    if not batch:
                        return
                    hinted_version = dtree.version
                    hint = self._lookahead_hint(dtree, w, batch, tasks)
                    for pos, tid in enumerate(batch):
                        if failed.is_set() or dead[w]:
                            return
                        if dtree.version != hinted_version:
                            # The schedule moved under us since the hint
                            # (a sibling's grant drained pools we peeked):
                            # re-peek at dispatch so the shipped hint
                            # tracks the fields this worker will actually
                            # need, not the pre-stealing guess.
                            hinted_version = dtree.version
                            hint = self._lookahead_hint(
                                dtree, w, batch[pos:], tasks)
                        task = tasks[tid]
                        halo_idx = _halo_indices(
                            positions, set(task.source_indices),
                            task.region, config.halo_margin,
                        )
                        dispatch(w, task, halo_idx, hint)
                    # Match the thread executor's cadence: request the next
                    # batch only after this one completed, so the Dtree's
                    # dynamic load balancing still sees completion times.
                    with conds[w]:
                        while (pending[w] > 0 and not failed.is_set()
                               and not dead[w]):
                            conds[w].wait(timeout=0.5)
            except BaseException as exc:  # noqa: BLE001
                fail(exc)
            finally:
                with self._pump_lock:
                    active_pumps[0] -= 1

        self._pump_lock = threading.Lock()
        collector = threading.Thread(target=collect, daemon=True)
        pumps = [
            threading.Thread(target=pump, args=(w,), daemon=True)
            for w in range(n)
        ]
        t_start = time.perf_counter()
        collector.start()
        for t in pumps:
            t.start()
        for t in pumps:
            t.join()
        collector.join()
        if errors:
            raise errors[0]
        report.wall_seconds += time.perf_counter() - t_start
        report.sched_seconds += sum(sched_s)
        report.task_seconds += sum(task_s)
        report.messages += dtree.stats["messages"]
        report.hops += dtree.stats["hops"]
        self._sync_race_reports(report)
        self._sync_numeric_reports(report)
        return stage_elbo[0]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        pool = getattr(self, "pool", None)
        if pool is not None:
            if self._private_pool:
                pool.close()
            else:
                # Hand the shared pool back with its seats unbound so they
                # stop pinning the catalog windows we unlink below.
                pool.release()
        transport = self.base.array.transport
        if hasattr(transport, "unlink"):
            transport.unlink()
        if self._scratch_dir is not None:
            shutil.rmtree(self._scratch_dir, ignore_errors=True)


def _make_stage_runner(executor: str, store, working, priors, config,
                       counters, fields_spec, pool=None,
                       transport_name: str = "local"):
    if executor == "process":
        return _ProcessStageRunner(
            store, working, priors, config, counters, fields_spec,
            pool=pool, transport_name=transport_name,
        )
    return _ThreadStageRunner(store, working, priors, config, counters)


# ---------------------------------------------------------------------------
# The driver


def run_pipeline(
    fields: list,
    config: DriverConfig | None = None,
    priors: Priors | None = None,
    pool: WorkerPool | None = None,
) -> DriverResult:
    """Run the complete three-level pipeline over a survey's fields.

    Parameters
    ----------
    fields:
        Per-field image lists (e.g. from
        :func:`repro.survey.generate_survey_fields`) and/or paths to field
        files written by :func:`repro.survey.io.save_field`; on-disk fields
        are loaded through the look-ahead prefetcher.
    config:
        Driver knobs; when ``config.checkpoint_path`` is set, progress is
        saved after every stage and an existing compatible checkpoint is
        resumed from (including mid-stage, from the task-granular journal,
        when ``config.task_checkpoint`` is on).
    priors:
        Model priors (defaults to :func:`repro.core.default_priors`).
    pool:
        A caller-owned :class:`~repro.driver.pool.WorkerPool` to run
        process node-workers on.  Seats persist across calls, so a second
        run on a warm pool spawns zero new processes; the caller keeps
        ownership and must eventually ``close()`` it.  Ignored by the
        thread executor.  When omitted, the process executor uses a
        private pool torn down with the run.
    """
    if config is None:
        config = DriverConfig()
    # Pin the ELBO backend before anything reads or fingerprints the config.
    config = _pin_elbo_backend(config)
    # Resolve the analysis opt-ins the same way (config, then environment).
    config = _pin_analysis_flags(config)
    if priors is None:
        priors = default_priors()
    executor = _resolve_executor(config)
    transport_name = _resolve_pgas_transport(config, executor)
    if config.stop_after is not None and config.stop_after not in STAGES:
        raise ValueError(
            "stop_after must be one of %r, got %r"
            % (STAGES, config.stop_after)
        )
    if config.stop_after == "stage1" and not config.two_stage:
        raise ValueError("stop_after='stage1' requires two_stage=True")

    store = _FieldStore(fields, config.field_cache_capacity)
    runner = None
    try:
        fingerprint = _fingerprint(store, config)
        ckpt = None
        if config.checkpoint_path is not None:
            ckpt = load_checkpoint(config.checkpoint_path, fingerprint)
        resumed = list(ckpt.completed) if ckpt is not None else []
        if ckpt is None:
            ckpt = Checkpoint(fingerprint=fingerprint)

        counters = Counters()
        for name, value in ckpt.counters.items():
            counters.add(name, value)
        report = (DriverReport.from_dict(ckpt.report) if ckpt.report
                  else DriverReport())
        report.n_fields = sum(1 for m in store.metadata() if m)

        def save() -> None:
            report.active_pixel_visits = counters.get("active_pixel_visits")
            ckpt.counters = counters.snapshot()
            ckpt.report = report.as_dict()
            if config.checkpoint_path is not None:
                save_checkpoint(config.checkpoint_path, ckpt,
                                shards=config.n_nodes)

        def result(catalog: Catalog, outcomes: list, early: bool) -> DriverResult:
            report.stage_elbo.update(ckpt.stage_elbo)
            report.active_pixel_visits = counters.get("active_pixel_visits")
            return DriverResult(
                catalog=catalog,
                seed_catalog=seed,
                stage_elbo=dict(ckpt.stage_elbo),
                report=report,
                counters=counters.snapshot(),
                outcomes=outcomes,
                resumed_stages=resumed,
                stopped_early=early,
            )

        # -- Stage "seed": detect per field, merge across fields ----------------
        if ckpt.done("seed"):
            seed = ckpt.seed_catalog
        else:
            t0 = time.perf_counter()
            seed = _seed_catalog_from_store(store, config)
            report.wall_seconds += time.perf_counter() - t0
            ckpt.seed_catalog = seed
            ckpt.working_catalog = seed
            ckpt.mark_done("seed")
            save()
        if config.stop_after == "seed":
            return result(Catalog(list(seed)), [], early=True)

        # -- Partition: regenerated deterministically from the seed catalog -----
        bounds = store.bounds()
        tasks = generate_tasks(
            seed, bounds, config.target_weight, two_stage=config.two_stage
        )
        by_stage: dict[int, list[Task]] = {0: [], 1: []}
        for t in tasks:
            by_stage[t.stage].append(t)

        # The working catalog, sharded across node-worker ranks over the
        # resolved PGAS transport (process workers attach to its windows
        # one-sidedly; the thread executor's "local" name means in-process
        # numpy views, i.e. no transport object at all).
        start_entries = (list(ckpt.working_catalog)
                         if ckpt.working_catalog else list(seed))
        # halo_refresh makes workers read rows other workers are writing;
        # across processes that needs the transport's rank locks (snapshot
        # mode's disjoint access does not, so skip the syscall cost).
        working = ShardedCatalog.from_entries(
            start_entries, n_ranks=config.n_nodes,
            transport=(
                None if transport_name == "local"
                else make_transport(transport_name,
                                    locking=config.halo_refresh)
            ),
        )

        # -- Stages "stage0"/"stage1": Dtree-scheduled joint optimization -------
        task_checkpoint = (bool(config.task_checkpoint)
                           and config.checkpoint_path is not None)
        stage_names = ["stage0"] + (["stage1"] if config.two_stage else [])
        for stage_idx, stage_name in enumerate(stage_names):
            if not ckpt.done(stage_name):
                if runner is None:
                    runner = _make_stage_runner(
                        executor, store, working, priors, config, counters,
                        fields, pool=pool, transport_name=transport_name,
                    )
                replay = None
                if task_checkpoint:
                    # The journal is valid only against the checkpoint
                    # generation it was written under (the same nonce
                    # scheme that guards shard files): a journal from a
                    # different generation names a different stage start
                    # and must not be replayed.
                    journal = task_journal_path(
                        config.checkpoint_path, stage_name, ckpt.generation)
                    replay = load_task_journal(journal)
                    runner.journal_path = journal
                try:
                    elbo = runner.run(by_stage[stage_idx], report,
                                      replay=replay)
                finally:
                    runner.journal_path = None
                ckpt.stage_elbo[stage_name] = elbo
                ckpt.working_catalog = working.to_catalog()
                ckpt.mark_done(stage_name)
                save()
            if config.stop_after == stage_name:
                outcomes = list(runner.outcomes) if runner else []
                return result(working.to_catalog(), outcomes, early=True)

        # -- Stage "final": merge into the deduplicated global catalog ----------
        if ckpt.done("final"):
            final = ckpt.final_catalog
        else:
            final = dedup_catalog(working.to_catalog(), config.dedup_radius)
            ckpt.final_catalog = final
            ckpt.mark_done("final")
            save()

        outcomes = list(runner.outcomes) if runner else []
        return result(final, outcomes, early=False)
    finally:
        if runner is not None:
            runner.close()
        if 'working' in locals():
            transport = working.array.transport
            if hasattr(transport, "unlink"):
                transport.unlink()
        store.close()
