"""The end-to-end multi-field inference driver.

This is the paper's full three-level scheme run as one pipeline (Sections
IV-A through IV-D), over many fields:

1. **Seed** — the heuristic Photo pipeline runs on every field, per-field
   detections are mapped into global sky coordinates and merged into one
   deduplicated seed catalog (overlapping fields detect border sources
   twice).
2. **Partition** — the sky is recursively split into equal-work regions and
   re-covered by a half-size-shifted second partition, yielding two stages
   of tasks (:mod:`repro.partition`).
3. **Schedule** — a :class:`~repro.sched.dtree.Dtree` instance hands task
   batches to node-workers (threads standing in for cluster nodes); stage-1
   tasks only start after every stage-0 task completed, the two-stage
   barrier of Section IV-A.
4. **Optimize** — each task jointly optimizes its region's sources with
   Cyclades-scheduled threads (:func:`repro.parallel.optimize_region_parallel`),
   reading every image whose footprint covers the region — multi-field
   fusion, the capability the heuristic baseline lacks.
5. **Merge** — optimized parameters flow back into the global catalog by
   source index; a final deduplication produces the result.

Progress is checkpointed to JSON after every stage
(:mod:`repro.driver.checkpoint`), so a killed run resumes at the last
completed stage and reproduces the same final catalog.  FLOP and throughput
accounting accumulate in a :class:`~repro.perf.counters.Counters` bag and a
:class:`~repro.perf.driver.DriverReport`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field, replace

from repro.core.catalog import Catalog, CatalogEntry
from repro.core.priors import Priors, default_priors
from repro.driver.checkpoint import (
    STAGES,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.driver.merge import dedup_catalog, merge_catalogs
from repro.parallel import ParallelRegionConfig, optimize_region_parallel
from repro.partition import Region, Task, generate_tasks
from repro.perf.counters import Counters
from repro.perf.driver import DriverReport
from repro.photo import PhotoConfig, run_photo
from repro.sched import Dtree, DtreeConfig
from repro.survey.image import Image

__all__ = [
    "DriverConfig",
    "DriverResult",
    "TaskOutcome",
    "images_for_region",
    "run_pipeline",
    "seed_catalog_from_fields",
    "survey_bounds",
]


@dataclass
class DriverConfig:
    """Knobs of the end-to-end driver.

    ``n_nodes`` node-workers pull task batches from the Dtree; each task
    internally runs ``parallel.n_threads`` Cyclades threads — the driver's
    analogue of the paper's processes-per-node x threads-per-process layout.
    """

    #: Node-workers pulling from the Dtree (the "nodes" of level two).
    n_nodes: int = 2
    #: Target bright-pixel weight per region (task granularity).
    target_weight: float = 40.0
    #: Run the shifted second-stage partition (paper Section IV-A).
    two_stage: bool = True
    #: Dedup radius (pixels) for cross-field seed merging and final merge.
    dedup_radius: float = 2.0
    #: Extra margin (pixels) when matching image footprints to task regions,
    #: so patches of border sources still find their pixels.
    image_margin: float = 16.0
    #: Catalog sources within this many pixels outside a task's region are
    #: rendered into its model images as a frozen halo — without it, a
    #: source near a region border slides toward its unmodeled neighbor's
    #: flux and the fit corrupts.
    halo_margin: float = 16.0
    #: Task ids granted per Dtree request.
    max_batch: int = 2
    photo: PhotoConfig = field(default_factory=PhotoConfig)
    parallel: ParallelRegionConfig = field(default_factory=ParallelRegionConfig)
    dtree: DtreeConfig = field(default_factory=DtreeConfig)
    #: JSON checkpoint file; ``None`` disables checkpointing.
    checkpoint_path: str | None = None
    #: Stop (return) right after this stage completes and checkpoints —
    #: simulates a killed run for resume testing, and supports staged
    #: operation (e.g. seed on one machine, optimize on another).
    stop_after: str | None = None


@dataclass
class TaskOutcome:
    """Per-task execution record (diagnostics; not checkpointed)."""

    task_id: int
    stage: int
    worker: int
    n_sources: int
    elbo: float
    seconds: float


@dataclass
class DriverResult:
    """Everything a driver run produces.

    When the run stopped early (``config.stop_after``), ``catalog`` holds
    the current working catalog — optimized through the completed stages but
    not finalized — and ``stopped_early`` is True.
    """

    catalog: Catalog
    seed_catalog: Catalog
    stage_elbo: dict[str, float]
    report: DriverReport
    counters: dict[str, float]
    outcomes: list[TaskOutcome]
    #: Stages loaded from the checkpoint instead of executed.
    resumed_stages: list[str]
    stopped_early: bool = False


# ---------------------------------------------------------------------------
# Geometry helpers


def survey_bounds(fields: list[list[Image]]) -> Region:
    """Bounding region of every image footprint in the survey."""
    if not fields or not any(fields):
        raise ValueError("need at least one field with images")
    boxes = [im.sky_bounds() for images in fields for im in images]
    eps = 1e-6  # upper edges are half-open; keep boundary sources inside
    return Region(
        min(b[0] for b in boxes), max(b[1] for b in boxes) + eps,
        min(b[2] for b in boxes), max(b[3] for b in boxes) + eps,
    )


def images_for_region(
    fields: list[list[Image]], region: Region, margin: float
) -> list[Image]:
    """Every image whose footprint intersects ``region`` (with margin)."""
    out = []
    for images in fields:
        for im in images:
            x0, x1, y0, y1 = im.sky_bounds()
            if (
                region.x_min < x1 + margin
                and region.x_max > x0 - margin
                and region.y_min < y1 + margin
                and region.y_max > y0 - margin
            ):
                out.append(im)
    return out


# ---------------------------------------------------------------------------
# Stage 1: seeding


def seed_catalog_from_fields(
    fields: list[list[Image]], config: DriverConfig
) -> Catalog:
    """Run Photo per field and merge the per-field catalogs.

    Photo already reports sky coordinates (``detect_sources`` maps through
    the field WCS), so the per-field catalogs concatenate directly; the
    merge deduplicates sources detected by two overlapping fields.
    """
    per_field = [run_photo(images, config.photo) for images in fields]
    return merge_catalogs(per_field, config.dedup_radius)


# ---------------------------------------------------------------------------
# Stages 2+3+4: Dtree-scheduled two-stage optimization


def _fingerprint(fields: list[list[Image]], config: DriverConfig) -> dict:
    """Identity of a run for checkpoint compatibility checks.

    Covers every knob that affects *results*: the inputs, the partition and
    merge parameters, the halo/image margins, the Photo thresholds, and the
    full parallel/joint/single optimizer configuration (``asdict`` recurses
    into nested dataclasses).  Purely scheduling-side knobs (``n_nodes``,
    ``dtree``, ``max_batch``) are deliberately excluded: task results are
    independent of completion order, so a run may legitimately resume with
    a different worker layout.
    """
    return {
        "n_fields": len(fields),
        "field_shapes": [
            [im.height, im.width] for images in fields for im in images
        ],
        "target_weight": config.target_weight,
        "two_stage": config.two_stage,
        "dedup_radius": config.dedup_radius,
        "image_margin": config.image_margin,
        "halo_margin": config.halo_margin,
        "photo": dataclasses.asdict(config.photo),
        "parallel": dataclasses.asdict(config.parallel),
    }


class _StageRunner:
    """Executes one stage's tasks across Dtree-fed node-workers."""

    def __init__(
        self,
        fields: list[list[Image]],
        working: list[CatalogEntry],
        priors: Priors,
        config: DriverConfig,
        counters: Counters,
    ):
        self.fields = fields
        self.working = working
        self.priors = priors
        self.config = config
        self.counters = counters
        self.outcomes: list[TaskOutcome] = []
        self._lock = threading.Lock()

    def run(self, tasks: list[Task], report: DriverReport) -> float:
        """Run every task in ``tasks``; returns the stage's total ELBO."""
        if not tasks:
            return 0.0
        config = self.config
        # Tasks read entries and halos from the stage-start snapshot, never
        # from live results of concurrent tasks: results must not depend on
        # task completion order (and a resumed run must reproduce them).
        with self._lock:
            base = list(self.working)
        dtree = Dtree(config.n_nodes, len(tasks), config.dtree)
        stage_elbo = [0.0]
        sched_s = [0.0] * config.n_nodes
        task_s = [0.0] * config.n_nodes
        errors: list[BaseException] = []

        def node_worker(w: int) -> None:
            try:
                while True:
                    t0 = time.perf_counter()
                    batch = dtree.request(w, max_batch=config.max_batch)
                    sched_s[w] += time.perf_counter() - t0
                    if not batch:
                        return
                    for tid in batch:
                        t1 = time.perf_counter()
                        self._run_task(tasks[tid], base, w, stage_elbo, report)
                        task_s[w] += time.perf_counter() - t1
            except BaseException as exc:  # noqa: BLE001 - reraised below
                with self._lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=node_worker, args=(w,), daemon=True)
            for w in range(config.n_nodes)
        ]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        report.wall_seconds += time.perf_counter() - t_start
        report.sched_seconds += sum(sched_s)
        report.task_seconds += sum(task_s)
        report.messages += dtree.stats["messages"]
        report.hops += dtree.stats["hops"]
        report.n_tasks += len(tasks)
        return stage_elbo[0]

    def _run_task(
        self,
        task: Task,
        base: list[CatalogEntry],
        worker: int,
        stage_elbo: list,
        report: DriverReport,
    ) -> None:
        config = self.config
        images = images_for_region(self.fields, task.region, config.image_margin)
        region, m = task.region, config.halo_margin
        own = set(task.source_indices)
        entries = [base[i] for i in task.source_indices]
        halo = [
            e for j, e in enumerate(base)
            if j not in own
            and region.x_min - m <= e.position[0] < region.x_max + m
            and region.y_min - m <= e.position[1] < region.y_max + m
        ]
        if not images or not entries:
            return
        # Per-task deterministic seed: results must not depend on which
        # worker runs the task or in what order tasks complete.
        pconfig = replace(
            config.parallel,
            seed=config.parallel.seed + 7919 * task.task_id + task.stage,
        )
        t0 = time.perf_counter()
        result = optimize_region_parallel(
            images, entries, self.priors, pconfig, self.counters,
            frozen_entries=halo,
        )
        seconds = time.perf_counter() - t0
        with self._lock:
            # Regions within a stage are disjoint, so no two concurrent
            # tasks ever write the same source index.
            for g, e in zip(task.source_indices, result.catalog):
                self.working[g] = e
            stage_elbo[0] += result.elbo_total
            report.n_source_updates += task.n_sources * pconfig.n_passes
            self.outcomes.append(TaskOutcome(
                task_id=task.task_id,
                stage=task.stage,
                worker=worker,
                n_sources=task.n_sources,
                elbo=result.elbo_total,
                seconds=seconds,
            ))


# ---------------------------------------------------------------------------
# The driver


def run_pipeline(
    fields: list[list[Image]],
    config: DriverConfig | None = None,
    priors: Priors | None = None,
) -> DriverResult:
    """Run the complete three-level pipeline over a survey's fields.

    Parameters
    ----------
    fields:
        Per-field image lists (e.g. from
        :func:`repro.survey.generate_survey_fields`).
    config:
        Driver knobs; when ``config.checkpoint_path`` is set, progress is
        saved after every stage and an existing compatible checkpoint is
        resumed from.
    priors:
        Model priors (defaults to :func:`repro.core.default_priors`).
    """
    if config is None:
        config = DriverConfig()
    if priors is None:
        priors = default_priors()
    if config.stop_after is not None and config.stop_after not in STAGES:
        raise ValueError(
            "stop_after must be one of %r, got %r"
            % (STAGES, config.stop_after)
        )
    if config.stop_after == "stage1" and not config.two_stage:
        raise ValueError("stop_after='stage1' requires two_stage=True")

    fingerprint = _fingerprint(fields, config)
    ckpt = None
    if config.checkpoint_path is not None:
        ckpt = load_checkpoint(config.checkpoint_path, fingerprint)
    resumed = list(ckpt.completed) if ckpt is not None else []
    if ckpt is None:
        ckpt = Checkpoint(fingerprint=fingerprint)

    counters = Counters()
    for name, value in ckpt.counters.items():
        counters.add(name, value)
    report = DriverReport.from_dict(ckpt.report) if ckpt.report else DriverReport()
    report.n_fields = sum(1 for images in fields if images)

    def save() -> None:
        report.active_pixel_visits = counters.get("active_pixel_visits")
        ckpt.counters = counters.snapshot()
        ckpt.report = report.as_dict()
        if config.checkpoint_path is not None:
            save_checkpoint(config.checkpoint_path, ckpt)

    def result(catalog: Catalog, outcomes: list, early: bool) -> DriverResult:
        report.stage_elbo.update(ckpt.stage_elbo)
        report.active_pixel_visits = counters.get("active_pixel_visits")
        return DriverResult(
            catalog=catalog,
            seed_catalog=seed,
            stage_elbo=dict(ckpt.stage_elbo),
            report=report,
            counters=counters.snapshot(),
            outcomes=outcomes,
            resumed_stages=resumed,
            stopped_early=early,
        )

    # -- Stage "seed": detect per field, merge across fields ------------------
    if ckpt.done("seed"):
        seed = ckpt.seed_catalog
    else:
        t0 = time.perf_counter()
        seed = seed_catalog_from_fields(fields, config)
        report.wall_seconds += time.perf_counter() - t0
        ckpt.seed_catalog = seed
        ckpt.working_catalog = seed
        ckpt.mark_done("seed")
        save()
    if config.stop_after == "seed":
        return result(Catalog(list(seed)), [], early=True)

    # -- Partition: regenerated deterministically from the seed catalog -------
    bounds = survey_bounds(fields)
    tasks = generate_tasks(
        seed, bounds, config.target_weight, two_stage=config.two_stage
    )
    by_stage: dict[int, list[Task]] = {0: [], 1: []}
    for t in tasks:
        by_stage[t.stage].append(t)

    working = list(ckpt.working_catalog) if ckpt.working_catalog else list(seed)
    runner = _StageRunner(fields, working, priors, config, counters)

    # -- Stages "stage0"/"stage1": Dtree-scheduled joint optimization ---------
    stage_names = ["stage0"] + (["stage1"] if config.two_stage else [])
    for stage_idx, stage_name in enumerate(stage_names):
        if not ckpt.done(stage_name):
            elbo = runner.run(by_stage[stage_idx], report)
            ckpt.stage_elbo[stage_name] = elbo
            ckpt.working_catalog = Catalog(list(working))
            ckpt.mark_done(stage_name)
            save()
        if config.stop_after == stage_name:
            return result(Catalog(list(working)), list(runner.outcomes),
                          early=True)

    # -- Stage "final": merge into the deduplicated global catalog ------------
    if ckpt.done("final"):
        final = ckpt.final_catalog
    else:
        final = dedup_catalog(Catalog(list(working)), config.dedup_radius)
        ckpt.final_catalog = final
        ckpt.mark_done("final")
        save()

    return result(final, list(runner.outcomes), early=False)
