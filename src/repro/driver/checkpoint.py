"""JSON checkpointing for the multi-field driver.

The paper's production runs process tens of thousands of tasks over hours of
wall clock on a machine where preemption is routine; a run must be able to
die at any point and restart without redoing completed work.  The driver
checkpoints at *stage* granularity: after seeding, after each optimization
stage, and at the end.  Everything downstream of a stage is a deterministic
function of the stage's output catalog (task generation, scheduling, and the
optimizers are all seeded), so the checkpoint only needs to record the
catalogs, the stage ledger, and the accumulated accounting — a resumed run
reproduces the same final catalog as an uninterrupted one.

The file is plain JSON, written atomically (temp file + rename) so a crash
mid-write never corrupts an existing checkpoint.  A fingerprint of the run
configuration guards against resuming with incompatible inputs: on mismatch
the checkpoint is ignored rather than misapplied.

The *working* catalog — the one that grows with the survey — can be written
as per-rank **shard files** (``save_checkpoint(..., shards=k)``) mirroring
the PGAS block partition, so each node-worker's slice of the catalog is an
independent file, the way the paper's node-local state would checkpoint.
The main JSON then records a manifest instead of the inline catalog; a
missing or corrupt shard invalidates the whole checkpoint (load returns
``None`` and the run restarts, which is always correct, just slower).

**Task-granular progress** rides the same generation-nonce scheme: while a
stage runs, every completed Cyclades task appends one JSON line to a
*journal* file named for the stage and the generation of the checkpoint it
extends (:func:`task_journal_path`).  A run killed mid-stage resumes from
the stage-granular checkpoint plus the journal: replayed tasks' rows are
applied to the working catalog and excluded from scheduling, and the
remaining tasks re-execute exactly as they would have (task outputs are
deterministic functions of the stage-start snapshot, so replay order does
not matter and a half-written last line is simply dropped).  Journals of
superseded generations are garbage-collected together with stale shards.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.core.catalog import Catalog, CatalogEntry

__all__ = [
    "STAGES",
    "Checkpoint",
    "append_task_record",
    "entry_to_dict",
    "entry_from_dict",
    "load_checkpoint",
    "load_task_journal",
    "save_checkpoint",
    "shard_path",
    "task_journal_path",
]

#: Pipeline stages in execution order.  ``seed`` covers per-field detection
#: plus cross-field merging; ``stage0``/``stage1`` are the two-stage shifted
#: optimization rounds; ``final`` is the deduplicated global catalog.
STAGES: tuple[str, ...] = ("seed", "stage0", "stage1", "final")

_CHECKPOINT_VERSION = 1


def entry_to_dict(e: CatalogEntry) -> dict:
    """JSON-serializable form of one catalog entry."""
    return {
        "position": [float(e.position[0]), float(e.position[1])],
        "is_galaxy": bool(e.is_galaxy),
        "flux_r": float(e.flux_r),
        "colors": [float(c) for c in e.colors],
        "gal_frac_dev": float(e.gal_frac_dev),
        "gal_axis_ratio": float(e.gal_axis_ratio),
        "gal_angle": float(e.gal_angle),
        "gal_radius_px": float(e.gal_radius_px),
        "prob_galaxy": None if e.prob_galaxy is None else float(e.prob_galaxy),
        "flux_r_sd": None if e.flux_r_sd is None else float(e.flux_r_sd),
        "color_sd": None if e.color_sd is None
        else [float(c) for c in e.color_sd],
    }


def entry_from_dict(d: dict) -> CatalogEntry:
    return CatalogEntry(
        position=np.asarray(d["position"], dtype=float),
        is_galaxy=bool(d["is_galaxy"]),
        flux_r=float(d["flux_r"]),
        colors=np.asarray(d["colors"], dtype=float),
        gal_frac_dev=float(d["gal_frac_dev"]),
        gal_axis_ratio=float(d["gal_axis_ratio"]),
        gal_angle=float(d["gal_angle"]),
        gal_radius_px=float(d["gal_radius_px"]),
        prob_galaxy=d.get("prob_galaxy"),
        flux_r_sd=d.get("flux_r_sd"),
        color_sd=None if d.get("color_sd") is None
        else np.asarray(d["color_sd"], dtype=float),
    )


def _catalog_to_list(catalog: Catalog | None) -> list | None:
    if catalog is None:
        return None
    return [entry_to_dict(e) for e in catalog]


def _catalog_from_list(rows: list | None) -> Catalog | None:
    if rows is None:
        return None
    return Catalog([entry_from_dict(r) for r in rows])


@dataclass
class Checkpoint:
    """Persistent driver state at the last completed stage."""

    fingerprint: dict
    completed: list[str] = field(default_factory=list)
    seed_catalog: Catalog | None = None
    working_catalog: Catalog | None = None
    final_catalog: Catalog | None = None
    stage_elbo: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    report: dict = field(default_factory=dict)
    #: Generation nonce of the shard set this checkpoint was saved with
    #: (``None`` before the first sharded save).  Runtime state, not
    #: serialized: on load it is recovered from the working manifest.  Task
    #: journals extending this checkpoint are named for it, which ties each
    #: journal to exactly the checkpoint whose stage it continues.
    generation: str | None = field(default=None, compare=False)

    def done(self, stage: str) -> bool:
        return stage in self.completed

    def mark_done(self, stage: str) -> None:
        if stage not in STAGES:
            raise ValueError("unknown stage %r" % (stage,))
        if stage not in self.completed:
            self.completed.append(stage)

    def to_json(self) -> dict:
        return {
            "version": _CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "completed": list(self.completed),
            "seed_catalog": _catalog_to_list(self.seed_catalog),
            "working_catalog": _catalog_to_list(self.working_catalog),
            "final_catalog": _catalog_to_list(self.final_catalog),
            "stage_elbo": dict(self.stage_elbo),
            "counters": dict(self.counters),
            "report": dict(self.report),
        }

    @classmethod
    def from_json(cls, d: dict) -> "Checkpoint":
        return cls(
            fingerprint=dict(d.get("fingerprint", {})),
            completed=list(d.get("completed", [])),
            seed_catalog=_catalog_from_list(d.get("seed_catalog")),
            working_catalog=_catalog_from_list(d.get("working_catalog")),
            final_catalog=_catalog_from_list(d.get("final_catalog")),
            stage_elbo=dict(d.get("stage_elbo", {})),
            counters=dict(d.get("counters", {})),
            report=dict(d.get("report", {})),
        )


def _atomic_json_write(path: str, data: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(data, f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def shard_path(path: str, rank: int, n_shards: int, generation: str) -> str:
    """Filename of one working-catalog shard next to the main checkpoint.

    The generation nonce makes each save's shard set distinct: a crash
    between shard writes and the main-JSON rename leaves the *previous*
    generation (the one the surviving main JSON references) untouched, so
    mixed-generation state can never pass for a valid checkpoint.
    """
    return "%s.shard%d-of-%d.%s" % (path, rank, n_shards, generation)


def _cleanup_stale_shards(path: str, keep_generation: str | None) -> None:
    """Best-effort removal of shard and task-journal files from superseded
    generations (``keep_generation=None`` removes every generation —
    correct once the main JSON no longer references any shard set)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    base = os.path.basename(path)
    prefixes = (base + ".shard", base + ".tasks.")
    keep = "." + keep_generation if keep_generation is not None else None
    try:
        names = sorted(os.listdir(directory))
    except OSError:  # pragma: no cover - directory vanished
        return
    for name in names:
        if not name.startswith(prefixes):
            continue
        if keep is not None and name.endswith(keep):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:  # pragma: no cover - already gone
            pass


def save_checkpoint(path: str, ckpt: Checkpoint, shards: int = 0) -> None:
    """Atomically write a checkpoint (temp file + rename).

    With ``shards > 0`` the working catalog is block-partitioned into that
    many per-rank shard files under a fresh generation nonce, written
    before the main JSON (whose manifest names the generation); stale
    generations are deleted only after the main JSON landed.  A crash at
    any point leaves the previously-written checkpoint fully loadable.
    """
    data = ckpt.to_json()
    if shards > 0 and ckpt.working_catalog is not None:
        generation = uuid.uuid4().hex[:12]  # det: ignore[DET108] -- uniqueness is the point: a nonce distinguishing shard generations, never replayed
        entries = data["working_catalog"]  # already serialized by to_json
        n = len(entries)
        block = -(-n // shards) if n else 1
        for rank in range(shards):
            lo = min(rank * block, n)
            hi = min(lo + block, n)
            _atomic_json_write(shard_path(path, rank, shards, generation), {
                "version": _CHECKPOINT_VERSION,
                "shard": rank,
                "n_shards": shards,
                "generation": generation,
                "rows": entries[lo:hi],
            })
        data["working_catalog"] = None
        data["working_manifest"] = {
            "n_entries": n, "n_shards": shards, "generation": generation,
        }
        _atomic_json_write(path, data)
        _cleanup_stale_shards(path, generation)
        ckpt.generation = generation
        return
    _atomic_json_write(path, data)
    # The main JSON now references no shard set, so every shard file — and
    # every task journal, which extends a sharded checkpoint — is stale.
    # Without this, alternating sharded and inline saves at one path would
    # leak one shard set per sharded save.
    _cleanup_stale_shards(path, None)
    ckpt.generation = None


def task_journal_path(path: str, stage: str, generation: str | None) -> str:
    """Filename of the task journal extending checkpoint ``path`` at
    ``generation`` through in-progress stage ``stage``.  ``generation`` is
    the loaded checkpoint's shard generation (``"root"`` when the run has
    not written a sharded checkpoint yet, i.e. the journal extends the
    un-sharded or absent checkpoint)."""
    return "%s.tasks.%s.%s" % (path, stage, generation or "root")


def append_task_record(journal: str, record: dict) -> None:
    """Durably append one completed task to a journal (one JSON line,
    flushed and fsynced — after this returns, the task survives a kill)."""
    line = json.dumps(record, sort_keys=True)
    with open(journal, "a") as f:
        f.write(line + "\n")
        f.flush()
        os.fsync(f.fileno())


def load_task_journal(journal: str) -> list[dict]:
    """Read back a journal's completed-task records, in append order.

    Tolerant of a truncated tail: a run killed mid-append leaves a partial
    last line, which is dropped (that task simply re-executes — appends are
    idempotent from the scheduler's point of view because replayed task ids
    are excluded before re-execution, and re-execution is deterministic)."""
    records: list[dict] = []
    try:
        with open(journal) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # partial tail from a mid-append crash
    except (FileNotFoundError, OSError):
        return []
    return records


def _load_shards(path: str, manifest: dict) -> Catalog | None:
    n_shards = int(manifest["n_shards"])
    generation = str(manifest.get("generation", ""))
    entries: list[CatalogEntry] = []
    for rank in range(n_shards):
        try:
            with open(shard_path(path, rank, n_shards, generation)) as f:
                shard = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        if (shard.get("version") != _CHECKPOINT_VERSION
                or shard.get("shard") != rank
                or shard.get("n_shards") != n_shards
                or shard.get("generation") != generation):
            return None
        entries.extend(entry_from_dict(r) for r in shard["rows"])
    if len(entries) != int(manifest["n_entries"]):
        return None
    return Catalog(entries)


def load_checkpoint(path: str, fingerprint: dict) -> Checkpoint | None:
    """Load a checkpoint, or ``None`` when absent/incompatible/corrupt.

    A truncated or unparseable file (killed mid-write before the atomic
    rename existed, disk trouble, ...), a fingerprint mismatch, and a
    missing or corrupt working-catalog shard all return ``None``: the
    driver then restarts from scratch, which is always correct, just
    slower.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as f:
            data = json.load(f)
    except (json.JSONDecodeError, OSError):
        return None
    if data.get("version") != _CHECKPOINT_VERSION:
        return None
    if data.get("fingerprint") != fingerprint:
        return None
    ckpt = Checkpoint.from_json(data)
    manifest = data.get("working_manifest")
    if manifest is not None:
        working = _load_shards(path, manifest)
        if working is None:
            return None
        ckpt.working_catalog = working
        ckpt.generation = str(manifest.get("generation", "")) or None
    return ckpt
