"""JSON checkpointing for the multi-field driver.

The paper's production runs process tens of thousands of tasks over hours of
wall clock on a machine where preemption is routine; a run must be able to
die at any point and restart without redoing completed work.  The driver
checkpoints at *stage* granularity: after seeding, after each optimization
stage, and at the end.  Everything downstream of a stage is a deterministic
function of the stage's output catalog (task generation, scheduling, and the
optimizers are all seeded), so the checkpoint only needs to record the
catalogs, the stage ledger, and the accumulated accounting — a resumed run
reproduces the same final catalog as an uninterrupted one.

The file is plain JSON, written atomically (temp file + rename) so a crash
mid-write never corrupts an existing checkpoint.  A fingerprint of the run
configuration guards against resuming with incompatible inputs: on mismatch
the checkpoint is ignored rather than misapplied.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.catalog import Catalog, CatalogEntry

__all__ = [
    "STAGES",
    "Checkpoint",
    "entry_to_dict",
    "entry_from_dict",
    "load_checkpoint",
    "save_checkpoint",
]

#: Pipeline stages in execution order.  ``seed`` covers per-field detection
#: plus cross-field merging; ``stage0``/``stage1`` are the two-stage shifted
#: optimization rounds; ``final`` is the deduplicated global catalog.
STAGES: tuple[str, ...] = ("seed", "stage0", "stage1", "final")

_CHECKPOINT_VERSION = 1


def entry_to_dict(e: CatalogEntry) -> dict:
    """JSON-serializable form of one catalog entry."""
    return {
        "position": [float(e.position[0]), float(e.position[1])],
        "is_galaxy": bool(e.is_galaxy),
        "flux_r": float(e.flux_r),
        "colors": [float(c) for c in e.colors],
        "gal_frac_dev": float(e.gal_frac_dev),
        "gal_axis_ratio": float(e.gal_axis_ratio),
        "gal_angle": float(e.gal_angle),
        "gal_radius_px": float(e.gal_radius_px),
        "prob_galaxy": None if e.prob_galaxy is None else float(e.prob_galaxy),
        "flux_r_sd": None if e.flux_r_sd is None else float(e.flux_r_sd),
        "color_sd": None if e.color_sd is None
        else [float(c) for c in e.color_sd],
    }


def entry_from_dict(d: dict) -> CatalogEntry:
    return CatalogEntry(
        position=np.asarray(d["position"], dtype=float),
        is_galaxy=bool(d["is_galaxy"]),
        flux_r=float(d["flux_r"]),
        colors=np.asarray(d["colors"], dtype=float),
        gal_frac_dev=float(d["gal_frac_dev"]),
        gal_axis_ratio=float(d["gal_axis_ratio"]),
        gal_angle=float(d["gal_angle"]),
        gal_radius_px=float(d["gal_radius_px"]),
        prob_galaxy=d.get("prob_galaxy"),
        flux_r_sd=d.get("flux_r_sd"),
        color_sd=None if d.get("color_sd") is None
        else np.asarray(d["color_sd"], dtype=float),
    )


def _catalog_to_list(catalog: Catalog | None) -> list | None:
    if catalog is None:
        return None
    return [entry_to_dict(e) for e in catalog]


def _catalog_from_list(rows: list | None) -> Catalog | None:
    if rows is None:
        return None
    return Catalog([entry_from_dict(r) for r in rows])


@dataclass
class Checkpoint:
    """Persistent driver state at the last completed stage."""

    fingerprint: dict
    completed: list[str] = field(default_factory=list)
    seed_catalog: Catalog | None = None
    working_catalog: Catalog | None = None
    final_catalog: Catalog | None = None
    stage_elbo: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    report: dict = field(default_factory=dict)

    def done(self, stage: str) -> bool:
        return stage in self.completed

    def mark_done(self, stage: str) -> None:
        if stage not in STAGES:
            raise ValueError("unknown stage %r" % (stage,))
        if stage not in self.completed:
            self.completed.append(stage)

    def to_json(self) -> dict:
        return {
            "version": _CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "completed": list(self.completed),
            "seed_catalog": _catalog_to_list(self.seed_catalog),
            "working_catalog": _catalog_to_list(self.working_catalog),
            "final_catalog": _catalog_to_list(self.final_catalog),
            "stage_elbo": dict(self.stage_elbo),
            "counters": dict(self.counters),
            "report": dict(self.report),
        }

    @classmethod
    def from_json(cls, d: dict) -> "Checkpoint":
        return cls(
            fingerprint=dict(d.get("fingerprint", {})),
            completed=list(d.get("completed", [])),
            seed_catalog=_catalog_from_list(d.get("seed_catalog")),
            working_catalog=_catalog_from_list(d.get("working_catalog")),
            final_catalog=_catalog_from_list(d.get("final_catalog")),
            stage_elbo=dict(d.get("stage_elbo", {})),
            counters=dict(d.get("counters", {})),
            report=dict(d.get("report", {})),
        )


def save_checkpoint(path: str, ckpt: Checkpoint) -> None:
    """Atomically write a checkpoint (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(ckpt.to_json(), f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str, fingerprint: dict) -> Checkpoint | None:
    """Load a checkpoint, or ``None`` when absent/incompatible/corrupt.

    A truncated or unparseable file (killed mid-write before the atomic
    rename existed, disk trouble, ...) and a fingerprint mismatch both
    return ``None``: the driver then restarts from scratch, which is always
    correct, just slower.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as f:
            data = json.load(f)
    except (json.JSONDecodeError, OSError):
        return None
    if data.get("version") != _CHECKPOINT_VERSION:
        return None
    if data.get("fingerprint") != fingerprint:
        return None
    return Checkpoint.from_json(data)
