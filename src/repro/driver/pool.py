"""An elastic, persistent pool of process node-workers.

Spawning a worker process costs real wall clock (interpreter start under
the ``spawn`` method, imports, shared-memory attach), which the original
driver paid per :func:`~repro.driver.pipeline.run_pipeline` call.  A
:class:`WorkerPool` amortizes it: workers are generic *seats* that persist
across stages and across pipeline runs, and the driver binds them to a
concrete run's state (fields, config, catalogs) with an in-band message
instead of respawning.  The pool grows on demand (:meth:`ensure`), shrinks
explicitly (:meth:`shrink`), and transparently respawns seats whose process
died — the resumable-worker half of fault recovery (the scheduler-side
half, re-dispatching a dead worker's tasks, lives in the stage runner).

The seat protocol (per-seat FIFO task queue, one shared result queue):

``("bind", epoch, worker_id, fields, metadata, priors, config, base,
working)``
    (Re)build the seat's execution state for one stage.  ``epoch`` is a
    parent-chosen integer echoed in every result message, so a collector
    never misattributes a straggler message from an earlier stage (e.g.
    after a mid-stage failure left unconsumed results behind).

``("task", task, halo_indices, field_hint)``
    Execute one task against the bound state; report a ``("done", epoch,
    ...)`` message.  FIFO ordering per seat makes bind acknowledgements
    unnecessary: a task enqueued after a bind runs under that bind.

``("release",)``
    Drop the bound state (close field prefetchers, detach catalog
    windows) but keep the seat alive for the next bind.

``None``
    Shut the seat down.
"""

from __future__ import annotations

import multiprocessing
import traceback

__all__ = ["WorkerPool"]


def _pool_worker_main(seat: int, task_q, result_q) -> None:
    """Body of one pool seat: a bind/execute/release loop."""
    # Lazy import: pipeline imports this module at load time.
    from repro.driver.pipeline import _WorkerState

    state = None
    try:
        while True:
            item = task_q.get()
            if item is None:
                return
            kind = item[0]
            if kind == "bind":
                if state is not None:
                    state.close()
                state = _WorkerState(*item[1:])
            elif kind == "release":
                if state is not None:
                    state.close()
                    state = None
            elif kind == "task":
                _, task, halo_idx, hint = item
                state.execute(task, halo_idx, hint, result_q)
    except BaseException:  # noqa: BLE001 - forwarded to the parent
        result_q.put(("error", seat,
                      state.epoch if state is not None else None,
                      traceback.format_exc()))
    finally:
        if state is not None:
            state.close()


class WorkerPool:
    """Elastic pool of persistent process node-worker seats.

    Safe to share across sequential :func:`run_pipeline` calls (pass it via
    the ``pool`` argument); not safe for two concurrent runs.  The owner
    must :meth:`close` it eventually; a pool used privately by one stage
    runner is closed by that runner.
    """

    def __init__(self, mp_start_method: str = "spawn"):
        self._ctx = multiprocessing.get_context(mp_start_method)
        self.result_q = self._ctx.Queue()
        self.procs: list = []
        self.task_qs: list = []
        #: Workers spawned over the pool's lifetime — the number a caller
        #: watches to prove reuse (a second pipeline run on a warm pool
        #: spawns zero new workers).
        self.spawned_total = 0
        self._closed = False

    @property
    def size(self) -> int:
        return len(self.procs)

    def alive(self, seat: int) -> bool:
        return seat < len(self.procs) and self.procs[seat].is_alive()

    def _spawn(self, seat: int):
        q = self._ctx.Queue()
        p = self._ctx.Process(
            target=_pool_worker_main, args=(seat, q, self.result_q),
            daemon=True,
        )
        p.start()
        self.spawned_total += 1
        return p, q

    def ensure(self, n: int) -> list[int]:
        """Grow to at least ``n`` seats and respawn any dead seat below
        ``n`` (with a fresh queue — a dead seat's queue may hold messages
        nothing will ever read).  Returns the seats (re)spawned."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        spawned: list[int] = []
        for seat in range(min(n, len(self.procs))):
            if not self.procs[seat].is_alive():
                self.task_qs[seat].close()
                self.procs[seat], self.task_qs[seat] = self._spawn(seat)
                spawned.append(seat)
        while len(self.procs) < n:
            seat = len(self.procs)
            p, q = self._spawn(seat)
            self.procs.append(p)
            self.task_qs.append(q)
            spawned.append(seat)
        return spawned

    def send(self, seat: int, item) -> None:
        self.task_qs[seat].put(item)

    def release(self, n: int | None = None) -> None:
        """Ask the first ``n`` (default: all) live seats to drop their
        bound state — called by a stage runner handing a shared pool back,
        so seats stop holding catalog windows the runner is about to
        unlink."""
        count = len(self.procs) if n is None else min(n, len(self.procs))
        for seat in range(count):
            if self.alive(seat):
                try:
                    self.task_qs[seat].put(("release",))
                except (OSError, ValueError):  # pragma: no cover
                    pass

    def shrink(self, n: int) -> None:
        """Shut down seats beyond the first ``n`` (blocking)."""
        while len(self.procs) > max(n, 0):
            p = self.procs.pop()
            q = self.task_qs.pop()
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
            p.join(timeout=30.0)
            if p.is_alive():  # pragma: no cover - hung worker
                p.terminate()
                p.join(timeout=5.0)
            q.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.shrink(0)
        self.result_q.close()
