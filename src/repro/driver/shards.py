"""The sharded working catalog: CatalogEntry <-> PGAS rows.

The paper's petascale run keeps the working catalog in a partitioned global
array — each light source is a fixed-width row of a distributed dense
matrix, block-partitioned across node-workers, accessed one-sidedly.  This
module provides the (de)serialization between :class:`CatalogEntry` and
those rows, plus :class:`ShardedCatalog`, a thin catalog-shaped facade over
:class:`~repro.pgas.GlobalArray`.

Rows are :data:`ROW_WIDTH` = 44 doubles wide, matching the paper's
44-parameter source records; the catalog-facing fields occupy the leading
slots and the remainder is reserved (zero) so a future full variational
catalog fits without a format change.  Optional fields (posterior standard
deviations, ``prob_galaxy``) encode ``None`` as NaN.  All stored fields are
float64 in and out, so an entry -> row -> entry round trip is exact — the
property the driver's thread/process bit-for-bit equivalence rests on.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NUM_CANONICAL_PARAMS, NUM_COLORS
from repro.core.catalog import Catalog, CatalogEntry
from repro.pgas import GlobalArray, RecordingTransport

__all__ = [
    "ROW_WIDTH",
    "entry_to_row",
    "entry_from_row",
    "ShardedCatalog",
]

#: Row width of the sharded catalog (the paper's 44-parameter records).
ROW_WIDTH = NUM_CANONICAL_PARAMS

# Slot layout of the catalog-facing prefix of a row.
_POSITION = slice(0, 2)
_IS_GALAXY = 2
_FLUX_R = 3
_COLORS = slice(4, 4 + NUM_COLORS)
_GAL_FRAC_DEV = 8
_GAL_AXIS_RATIO = 9
_GAL_ANGLE = 10
_GAL_RADIUS = 11
_PROB_GALAXY = 12
_FLUX_R_SD = 13
_COLOR_SD = slice(14, 14 + NUM_COLORS)
_USED = 14 + NUM_COLORS
assert _USED <= ROW_WIDTH


def entry_to_row(e: CatalogEntry) -> np.ndarray:
    """Encode one catalog entry as a 44-wide float64 row."""
    row = np.zeros(ROW_WIDTH)
    row[_POSITION] = e.position
    row[_IS_GALAXY] = 1.0 if e.is_galaxy else 0.0
    row[_FLUX_R] = e.flux_r
    row[_COLORS] = e.colors
    row[_GAL_FRAC_DEV] = e.gal_frac_dev
    row[_GAL_AXIS_RATIO] = e.gal_axis_ratio
    row[_GAL_ANGLE] = e.gal_angle
    row[_GAL_RADIUS] = e.gal_radius_px
    row[_PROB_GALAXY] = np.nan if e.prob_galaxy is None else e.prob_galaxy
    row[_FLUX_R_SD] = np.nan if e.flux_r_sd is None else e.flux_r_sd
    row[_COLOR_SD] = np.nan if e.color_sd is None else e.color_sd
    return row


def entry_from_row(row: np.ndarray) -> CatalogEntry:
    """Decode a row written by :func:`entry_to_row`."""
    row = np.asarray(row, dtype=float)
    if row.shape != (ROW_WIDTH,):
        raise ValueError("row must have width %d" % ROW_WIDTH)
    color_sd = row[_COLOR_SD]
    return CatalogEntry(
        position=row[_POSITION].copy(),
        is_galaxy=bool(row[_IS_GALAXY] != 0.0),
        flux_r=float(row[_FLUX_R]),
        colors=row[_COLORS].copy(),
        gal_frac_dev=float(row[_GAL_FRAC_DEV]),
        gal_axis_ratio=float(row[_GAL_AXIS_RATIO]),
        gal_angle=float(row[_GAL_ANGLE]),
        gal_radius_px=float(row[_GAL_RADIUS]),
        prob_galaxy=None if np.isnan(row[_PROB_GALAXY])
        else float(row[_PROB_GALAXY]),
        flux_r_sd=None if np.isnan(row[_FLUX_R_SD])
        else float(row[_FLUX_R_SD]),
        color_sd=None if np.all(np.isnan(color_sd)) else color_sd.copy(),
    )


class ShardedCatalog:
    """A working catalog stored as rows of a partitioned global array.

    Node-workers read and write individual sources through one-sided
    ``get``/``put`` row access; nobody ever holds the whole catalog except
    gather points (checkpointing, the final merge).  The transport decides
    the sharing mechanism: :class:`~repro.pgas.LocalTransport` for thread
    node-workers, :class:`~repro.pgas.SharedMemoryTransport` for process
    node-workers.
    """

    def __init__(self, n_rows: int, n_ranks: int, transport=None,
                 allocate: bool = True):
        self.array = GlobalArray(n_rows, ROW_WIDTH, n_ranks,
                                 transport=transport, allocate=allocate)

    @classmethod
    def from_entries(cls, entries, n_ranks: int,
                     transport=None) -> "ShardedCatalog":
        cat = cls(len(entries), n_ranks, transport=transport)
        for i, e in enumerate(entries):
            cat.put_entry(i, e)
        return cat

    @property
    def n_rows(self) -> int:
        return self.array.n_rows

    @property
    def n_ranks(self) -> int:
        return self.array.n_ranks

    def put_entry(self, i: int, e: CatalogEntry) -> None:
        self.array.put_row(i, entry_to_row(e))

    def get_entry(self, i: int) -> CatalogEntry:
        return entry_from_row(self.array.get_row(i))

    def put_entries(self, indices, entries) -> None:
        for i, e in zip(indices, entries):
            self.put_entry(int(i), e)

    def get_entries(self, indices) -> list[CatalogEntry]:
        return [self.get_entry(int(i)) for i in indices]

    def positions(self) -> np.ndarray:
        """Stacked positions, shape ``(n_rows, 2)`` (a full-row gather)."""
        if self.n_rows == 0:
            return np.zeros((0, 2))
        return self.array.to_dense()[:, _POSITION]

    def copy_rows_from(self, other: "ShardedCatalog") -> None:
        """Overwrite every row with ``other``'s rows (stage-start snapshot).

        With matching partitions this is one bulk get/put per rank, not per
        row — snapshot cost scales with ranks, not sources.
        """
        if other.n_rows != self.n_rows:
            raise ValueError("row count mismatch")
        if other.n_ranks == self.n_ranks:
            for rank in range(self.n_ranks):
                lo, hi = self.array.owned_range(rank)
                if hi > lo:
                    n = (hi - lo) * self.array.row_width
                    self.array.transport.put(
                        rank, 0, other.array.transport.get(rank, 0, n)
                    )
            return
        for i in range(self.n_rows):
            self.array.put_row(i, other.array.get_row(i))

    def to_catalog(self) -> Catalog:
        """Gather the whole catalog (checkpointing / merging only)."""
        return Catalog([self.get_entry(i) for i in range(self.n_rows)])

    def recording_view(self, local_rank: int):
        """A same-storage view whose traffic is counted separately.

        Returns ``(view, recorder)``: per-worker RMA accounting without
        touching the underlying windows.
        """
        recorder = RecordingTransport(self.array.transport,
                                      local_rank=local_rank)
        view = ShardedCatalog(self.n_rows, self.n_ranks, transport=recorder,
                              allocate=False)
        return view, recorder

    def shadow_view(self, local_rank: int, sink, window_name: str):
        """A recording view whose RMA ops are *also* shadowed into a race
        detector sink (:mod:`repro.analysis.race`).

        Returns ``(view, recorder, shadow)``: the view behaves exactly like
        :meth:`recording_view`'s (same storage, same accounting), and every
        ``get``/``put`` additionally lands in ``sink`` tagged with the
        shadow's current (actor, epoch) — set per unit of work via
        ``shadow.set_task``.
        """
        from repro.analysis.race import ShadowTransport

        recorder = RecordingTransport(self.array.transport,
                                      local_rank=local_rank)
        shadow = ShadowTransport(recorder, sink, window_name)
        view = ShardedCatalog(self.n_rows, self.n_ranks, transport=shadow,
                              allocate=False)
        return view, recorder, shadow
