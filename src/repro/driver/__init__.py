"""The end-to-end multi-field inference driver.

Runs the paper's complete three-level scheme as one pipeline: Photo seeding
per field, two-stage shifted sky partitioning, Dtree dynamic scheduling of
tasks across node-workers, Cyclades conflict-free threading within each
task, and deduplicated merging into a global catalog — with per-stage ELBO
totals, FLOP/communication accounting, and JSON checkpoint/resume.

Node-workers run under one of two **executors** (``DriverConfig.executor``
or the ``REPRO_DRIVER_EXECUTOR`` environment variable):

``"thread"``
    Workers are threads sharing this address space.  Cheap to start;
    speedups are capped by what NumPy releases of the GIL.
``"process"``
    Workers are spawn-safe ``multiprocessing`` processes — the paper's
    distributed-memory node layout.  The working catalog is sharded across
    ranks as 44-wide rows of a PGAS :class:`~repro.pgas.GlobalArray`
    backed by POSIX shared memory, and workers do one-sided
    ``get_row``/``put_row`` for exactly the rows their tasks touch
    (:mod:`repro.driver.shards`).

Both executors share one task-execution path reading from a stage-start
snapshot of the sharded catalog, so they produce bit-for-bit identical
catalogs.  Fields given as file paths are loaded by a prefetch thread keyed
to the Dtree look-ahead (the paper's Burst Buffer pipeline), and the
working catalog checkpoints as per-rank shard files.  This is the
architectural spine future scaling work (elastic workers, task-granular
checkpointing, multiple backends) plugs into.
"""

from repro.driver.checkpoint import (
    STAGES,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
    shard_path,
)
from repro.driver.merge import dedup_catalog, merge_catalogs
from repro.driver.pipeline import (
    DriverConfig,
    DriverResult,
    TaskOutcome,
    images_for_region,
    run_pipeline,
    seed_catalog_from_fields,
    survey_bounds,
)
from repro.driver.shards import (
    ROW_WIDTH,
    ShardedCatalog,
    entry_from_row,
    entry_to_row,
)

__all__ = [
    "STAGES",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "shard_path",
    "dedup_catalog",
    "merge_catalogs",
    "DriverConfig",
    "DriverResult",
    "TaskOutcome",
    "images_for_region",
    "run_pipeline",
    "seed_catalog_from_fields",
    "survey_bounds",
    "ROW_WIDTH",
    "ShardedCatalog",
    "entry_from_row",
    "entry_to_row",
]
