"""The end-to-end multi-field inference driver.

Runs the paper's complete three-level scheme as one pipeline: Photo seeding
per field, two-stage shifted sky partitioning, Dtree dynamic scheduling of
tasks across node-workers, Cyclades conflict-free threading within each
task, and deduplicated merging into a global catalog — with per-stage ELBO
totals, FLOP accounting, and JSON checkpoint/resume.  This is the
architectural spine future scaling work (sharding, async I/O, multiple
backends) plugs into.
"""

from repro.driver.checkpoint import (
    STAGES,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.driver.merge import dedup_catalog, merge_catalogs
from repro.driver.pipeline import (
    DriverConfig,
    DriverResult,
    TaskOutcome,
    images_for_region,
    run_pipeline,
    seed_catalog_from_fields,
    survey_bounds,
)

__all__ = [
    "STAGES",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "dedup_catalog",
    "merge_catalogs",
    "DriverConfig",
    "DriverResult",
    "TaskOutcome",
    "images_for_region",
    "run_pipeline",
    "seed_catalog_from_fields",
    "survey_bounds",
]
