"""Catalog validation: matching and the Table II error metrics.

The paper scores catalogs on twelve quantities (Table II): position error,
missed-galaxy and missed-star rates, reference-band brightness error, four
color errors, and four galaxy-morphology errors (profile, eccentricity,
scale, angle).  This module matches an estimated catalog against ground
truth by position and computes exactly those averages, lower = better.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from repro.core.catalog import Catalog, CatalogEntry

__all__ = ["CatalogMatch", "match_catalogs", "ErrorMetrics", "score_catalog",
           "TABLE2_ROWS"]

#: Row labels of Table II, in the paper's order.
TABLE2_ROWS = (
    "Position", "Missed gals", "Missed stars", "Brightness",
    "Color u-g", "Color g-r", "Color r-i", "Color i-z",
    "Profile", "Eccentricity", "Scale", "Angle",
)

#: Magnitudes per unit of natural-log flux ratio.
_MAG_PER_LN = 2.5 / np.log(10.0)


@dataclass
class CatalogMatch:
    """Pairing of truth entries with estimated entries."""

    pairs: list[tuple[CatalogEntry, CatalogEntry]]
    unmatched_truth: list[CatalogEntry]
    unmatched_estimate: list[CatalogEntry]

    @property
    def n_matched(self) -> int:
        return len(self.pairs)

    @property
    def completeness(self) -> float:
        total = len(self.pairs) + len(self.unmatched_truth)
        return len(self.pairs) / total if total else 0.0

    @property
    def false_detection_rate(self) -> float:
        total = len(self.pairs) + len(self.unmatched_estimate)
        return len(self.unmatched_estimate) / total if total else 0.0


def match_catalogs(
    truth: Catalog, estimate: Catalog, max_distance: float = 2.0
) -> CatalogMatch:
    """Greedy nearest-neighbor matching within ``max_distance`` pixels."""
    if len(truth) == 0 or len(estimate) == 0:
        return CatalogMatch([], list(truth), list(estimate))
    est_pos = estimate.positions()
    tree = cKDTree(est_pos)
    taken: set[int] = set()
    pairs = []
    unmatched_truth = []
    # Brightest truth sources claim their matches first.
    for entry in sorted(truth, key=lambda e: -e.flux_r):
        dists, idxs = tree.query(entry.position, k=min(4, len(estimate)))
        dists = np.atleast_1d(dists)
        idxs = np.atleast_1d(idxs)
        found = False
        for d, j in zip(dists, idxs):
            if d <= max_distance and int(j) not in taken:
                taken.add(int(j))
                pairs.append((entry, estimate[int(j)]))
                found = True
                break
        if not found:
            unmatched_truth.append(entry)
    unmatched_est = [e for j, e in enumerate(estimate) if j not in taken]
    return CatalogMatch(pairs, unmatched_truth, unmatched_est)


@dataclass
class ErrorMetrics:
    """Average errors in the paper's Table II format (lower is better)."""

    position: float = np.nan
    missed_gals: float = np.nan
    missed_stars: float = np.nan
    brightness: float = np.nan
    color_ug: float = np.nan
    color_gr: float = np.nan
    color_ri: float = np.nan
    color_iz: float = np.nan
    profile: float = np.nan
    eccentricity: float = np.nan
    scale: float = np.nan
    angle: float = np.nan
    n_matched: int = 0
    per_source: dict = field(default_factory=dict)

    def as_rows(self) -> dict[str, float]:
        return {
            "Position": self.position,
            "Missed gals": self.missed_gals,
            "Missed stars": self.missed_stars,
            "Brightness": self.brightness,
            "Color u-g": self.color_ug,
            "Color g-r": self.color_gr,
            "Color r-i": self.color_ri,
            "Color i-z": self.color_iz,
            "Profile": self.profile,
            "Eccentricity": self.eccentricity,
            "Scale": self.scale,
            "Angle": self.angle,
        }


def _angle_error_deg(a: float, b: float) -> float:
    d = abs(a - b) % np.pi
    return np.degrees(min(d, np.pi - d))


def score_catalog(
    truth: Catalog, estimate: Catalog, max_distance: float = 2.0
) -> ErrorMetrics:
    """Compute the Table II error metrics of ``estimate`` against ``truth``.

    Morphology rows (profile, eccentricity, scale, angle) average over true
    galaxies only; brightness/colors over all matched sources; the missed
    rates are misclassification fractions among matched sources.
    """
    match = match_catalogs(truth, estimate, max_distance)
    m = ErrorMetrics(n_matched=match.n_matched)
    if not match.pairs:
        return m

    pos, bright = [], []
    colors = [[] for _ in range(4)]
    gal_profile, gal_ecc, gal_scale, gal_angle = [], [], [], []
    missed_g, missed_s = [], []
    for t, e in match.pairs:
        pos.append(float(np.linalg.norm(t.position - e.position)))
        bright.append(_MAG_PER_LN * abs(np.log(e.flux_r / t.flux_r)))
        for i in range(4):
            colors[i].append(_MAG_PER_LN * abs(e.colors[i] - t.colors[i]))
        if t.is_galaxy:
            missed_g.append(0.0 if e.is_galaxy else 1.0)
            gal_profile.append(abs(e.gal_frac_dev - t.gal_frac_dev))
            gal_ecc.append(abs(e.gal_axis_ratio - t.gal_axis_ratio))
            gal_scale.append(abs(e.gal_radius_px - t.gal_radius_px))
            gal_angle.append(_angle_error_deg(e.gal_angle, t.gal_angle))
        else:
            missed_s.append(1.0 if e.is_galaxy else 0.0)

    def avg(xs):
        return float(np.mean(xs)) if xs else np.nan

    m.position = avg(pos)
    m.missed_gals = avg(missed_g)
    m.missed_stars = avg(missed_s)
    m.brightness = avg(bright)
    m.color_ug, m.color_gr, m.color_ri, m.color_iz = (avg(c) for c in colors)
    m.profile = avg(gal_profile)
    m.eccentricity = avg(gal_ecc)
    m.scale = avg(gal_scale)
    m.angle = avg(gal_angle)
    m.per_source = {
        "position": pos, "brightness": bright,
        "missed_gals": missed_g, "missed_stars": missed_s,
    }
    return m
