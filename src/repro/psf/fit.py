"""Fitting a Gaussian-mixture PSF to a pixelized PSF image.

SDSS ships an empirical PSF per field; Celeste fits a small Gaussian mixture
to it during task initialization ("fitting some image-specific parameters",
paper Section IV-D).  We reproduce that step with an intensity-weighted EM
algorithm: each pixel of the (background-subtracted) PSF stamp is treated as
a data point at its center, weighted by its intensity.
"""

from __future__ import annotations

import numpy as np

from repro.constants import EM_CLUSTER_MASS_FLOOR
from repro.psf.gmm import MixturePSF

__all__ = ["fit_psf"]


def fit_psf(
    stamp: np.ndarray,
    n_components: int = 2,
    n_iter: int = 60,
    tol: float = 1e-9,
    center: tuple[float, float] | None = None,
    min_var: float = 0.05,
    noise_floor: float = 1e-3,
) -> MixturePSF:
    """Fit a :class:`MixturePSF` to a PSF stamp via weighted EM.

    Parameters
    ----------
    stamp:
        2-D array of PSF intensities (need not be normalized; negative pixels
        are clipped to zero).
    n_components:
        Number of Gaussian components.
    center:
        Pixel coordinates ``(x, y)`` of the PSF center; defaults to the
        stamp's intensity centroid.  Component means are stored as offsets
        from this center.
    min_var:
        Variance floor (pixels^2) keeping components from collapsing onto a
        single pixel.
    noise_floor:
        Pixels below this fraction of the stamp maximum are zeroed before
        fitting, so read noise in the wings does not inflate the fit.
    """
    stamp = np.asarray(stamp, dtype=float)
    if stamp.ndim != 2:
        raise ValueError("PSF stamp must be 2-D")
    h, w = stamp.shape
    ys, xs = np.mgrid[0:h, 0:w]
    # Estimate the noise level from the stamp border (MAD, robust to flux in
    # the corners) and zero everything consistent with pure noise.
    border = np.concatenate([stamp[0], stamp[-1], stamp[1:-1, 0], stamp[1:-1, -1]])
    noise_sigma = 1.4826 * np.median(np.abs(border - np.median(border)))
    weights_px = np.clip(stamp, 0.0, None).ravel()
    if weights_px.max() > 0:
        cut = max(noise_floor * weights_px.max(), 3.0 * noise_sigma)
        weights_px[weights_px < cut] = 0.0
    total = weights_px.sum()
    if total <= 0:
        raise ValueError("PSF stamp has no positive flux")
    weights_px = weights_px / total
    pts = np.column_stack([xs.ravel().astype(float), ys.ravel().astype(float)])

    if center is None:
        center = tuple(weights_px @ pts)
    center = np.asarray(center, dtype=float)

    # Initialize: nested isotropic components around the centroid.
    d2 = ((pts - center) ** 2 * weights_px[:, None]).sum(axis=0).sum()
    base_var = max(d2 / 2.0, min_var)
    mix_w = np.full(n_components, 1.0 / n_components)
    means = np.tile(center, (n_components, 1))
    covs = np.stack([
        np.eye(2) * base_var * (0.5 * 2.0 ** k) for k in range(n_components)
    ])

    prev_ll = -np.inf
    for _ in range(n_iter):
        # E-step: responsibilities under current mixture.
        log_r = np.empty((len(pts), n_components))
        for k in range(n_components):
            diff = pts - means[k]
            cov = covs[k]
            det = np.linalg.det(cov)
            inv = np.linalg.inv(cov)
            q = np.einsum("ni,ij,nj->n", diff, inv, diff)
            log_r[:, k] = np.log(mix_w[k]) - 0.5 * (q + np.log((2 * np.pi) ** 2 * det))
        m = log_r.max(axis=1, keepdims=True)
        r = np.exp(log_r - m)
        norm = r.sum(axis=1, keepdims=True)
        ll = float((weights_px * (np.log(norm[:, 0]) + m[:, 0])).sum())
        r /= norm

        # M-step with pixel-intensity weights.
        wr = r * weights_px[:, None]
        nk = wr.sum(axis=0)
        nk = np.maximum(nk, EM_CLUSTER_MASS_FLOOR)
        mix_w = nk / nk.sum()
        for k in range(n_components):
            mu = (wr[:, k][:, None] * pts).sum(axis=0) / nk[k]
            diff = pts - mu
            cov = (wr[:, k][:, None, None] * np.einsum("ni,nj->nij", diff, diff)).sum(axis=0) / nk[k]
            cov += np.eye(2) * min_var
            means[k] = mu
            covs[k] = cov

        if abs(ll - prev_ll) < tol * max(1.0, abs(ll)):
            break
        prev_ll = ll

    order = np.argsort([np.trace(c) for c in covs])
    return MixturePSF(
        weights=mix_w[order],
        means=means[order] - center,
        covs=covs[order],
    )
