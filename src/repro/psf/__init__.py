"""Point spread function modeling.

SDSS models the PSF of each field as a small mixture of bivariate Gaussians;
Celeste adopts the same representation because it composes analytically with
the Gaussian-mixture galaxy profiles (convolution = covariance addition).
"""

from repro.psf.gmm import MixturePSF, default_psf
from repro.psf.fit import fit_psf

__all__ = ["MixturePSF", "default_psf", "fit_psf"]
