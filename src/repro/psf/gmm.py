"""Gaussian-mixture point spread functions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians import gauss2d

__all__ = ["MixturePSF", "default_psf"]

#: FWHM -> Gaussian sigma conversion factor.
FWHM_TO_SIGMA = 1.0 / (2.0 * np.sqrt(2.0 * np.log(2.0)))


@dataclass(frozen=True)
class MixturePSF:
    """A point spread function represented as a mixture of bivariate Gaussians.

    Attributes
    ----------
    weights:
        Component weights, shape ``(K,)``; normalized to sum to one.
    means:
        Component mean offsets in pixels, shape ``(K, 2)``.
    covs:
        Component covariances, shape ``(K, 2, 2)``.
    """

    weights: np.ndarray
    means: np.ndarray
    covs: np.ndarray

    def __post_init__(self):
        w = np.asarray(self.weights, dtype=float)
        m = np.asarray(self.means, dtype=float)
        c = np.asarray(self.covs, dtype=float)
        if w.ndim != 1 or m.shape != (w.size, 2) or c.shape != (w.size, 2, 2):
            raise ValueError("inconsistent PSF component shapes")
        if np.any(w < 0):
            raise ValueError("PSF weights must be non-negative")
        object.__setattr__(self, "weights", w / w.sum())
        object.__setattr__(self, "means", m)
        object.__setattr__(self, "covs", c)

    @property
    def n_components(self) -> int:
        return len(self.weights)

    def density(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Evaluate the PSF density at pixel offsets from the source center."""
        dx = np.asarray(dx, dtype=float)
        dy = np.asarray(dy, dtype=float)
        out = np.zeros(np.broadcast(dx, dy).shape)
        for w, mu, cov in zip(self.weights, self.means, self.covs):
            out += w * gauss2d(dx - mu[0], dy - mu[1], cov[0, 0], cov[0, 1], cov[1, 1])
        return out

    def second_moment(self) -> np.ndarray:
        """Total second-moment matrix of the PSF (about its centroid)."""
        centroid = (self.weights[:, None] * self.means).sum(axis=0)
        m = np.zeros((2, 2))
        for w, mu, cov in zip(self.weights, self.means, self.covs):
            d = mu - centroid
            m += w * (cov + np.outer(d, d))
        return m

    def fwhm(self) -> float:
        """Effective FWHM (from the geometric-mean sigma of the moments)."""
        m = self.second_moment()
        sigma = float(np.linalg.det(m)) ** 0.25
        return sigma / FWHM_TO_SIGMA

    def components(self):
        """Iterate over ``(weight, mean, (sxx, sxy, syy))`` triples."""
        for w, mu, cov in zip(self.weights, self.means, self.covs):
            yield float(w), mu, (float(cov[0, 0]), float(cov[0, 1]), float(cov[1, 1]))


def default_psf(fwhm: float = 3.0, wing_fraction: float = 0.15) -> MixturePSF:
    """A double-Gaussian PSF typical of SDSS imaging.

    A compact core plus a wider, low-amplitude wing (the classic
    "core + power-law wing" shape approximated by two Gaussians).

    Parameters
    ----------
    fwhm:
        Full width at half maximum of the core, in pixels (SDSS seeing is
        typically ~1.4 arcsec = ~3.5 pixels).
    wing_fraction:
        Fraction of flux in the wide component.
    """
    sigma = fwhm * FWHM_TO_SIGMA
    core = sigma ** 2 * np.eye(2)
    wing = (2.5 * sigma) ** 2 * np.eye(2)
    return MixturePSF(
        weights=np.array([1.0 - wing_fraction, wing_fraction]),
        means=np.zeros((2, 2)),
        covs=np.stack([core, wing]),
    )
