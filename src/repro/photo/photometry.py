"""Flux measurement: PSF-weighted and aperture photometry."""

from __future__ import annotations

import numpy as np

from repro.survey.image import Image
from repro.survey.render import source_patch

__all__ = ["psf_flux", "aperture_flux"]


def psf_flux(image: Image, sky_position: np.ndarray, radius: float = 12.0) -> float:
    """Matched-filter (PSF-weighted) flux estimate, in nanomaggies.

    For a point source with density ``g`` the estimator
    ``sum(g (x - sky)) / (iota sum(g^2))`` is the minimum-variance linear
    unbiased estimate on background-limited pixels — the standard "psfMag"
    style measurement.  Biased low for extended sources, which is one of the
    heuristic baseline's characteristic errors.
    """
    bounds = source_patch(image, sky_position, radius)
    if bounds is None:
        return 0.0
    x0, x1, y0, y1 = bounds
    ys, xs = np.mgrid[y0:y1, x0:x1]
    px, py = image.meta.wcs.sky_to_pix(np.asarray(sky_position))
    g = image.meta.psf.density(xs - px, ys - py)
    data = image.pixels[y0:y1, x0:x1] - image.meta.sky_level
    if image.mask is not None:
        good = ~image.mask[y0:y1, x0:x1]
        g = np.where(good, g, 0.0)  # drops both numerator and denominator
        data = np.where(good, data, 0.0)
    denom = image.meta.calibration * float((g * g).sum())
    if denom <= 0:
        return 0.0
    return float((g * data).sum() / denom)


def aperture_flux(image: Image, sky_position: np.ndarray, radius: float = 6.0) -> float:
    """Plain circular-aperture flux, in nanomaggies.

    Unbiased for any profile that fits in the aperture, but noisy; used for
    extended sources and for the concentration classifier.
    """
    bounds = source_patch(image, sky_position, radius + 1.0)
    if bounds is None:
        return 0.0
    x0, x1, y0, y1 = bounds
    ys, xs = np.mgrid[y0:y1, x0:x1]
    px, py = image.meta.wcs.sky_to_pix(np.asarray(sky_position))
    inside = (xs - px) ** 2 + (ys - py) ** 2 <= radius ** 2
    data = image.pixels[y0:y1, x0:x1] - image.meta.sky_level
    if image.mask is not None:
        inside = inside & ~image.mask[y0:y1, x0:x1]
    return float(data[inside].sum() / image.meta.calibration)
