"""The "Photo"-style heuristic pipeline: the paper's baseline.

Photo (Lupton et al.) is "a carefully hand-tuned heuristic" and "a
state-of-the-art software pipeline for constructing large astronomical
catalogs" (paper, Section VIII).  This package implements the same class of
single-image pipeline from scratch: matched-filter detection, moments
centroiding, PSF-weighted photometry, concentration-based star/galaxy
classification, second-moment shape measurement, and per-profile chi-square
fits.  It exhibits the heuristics' characteristic deficiencies the paper
calls out: it uses one field at a time (no multi-image fusion), it has no
principled uncertainty, and prior information enters only through tuned
thresholds.
"""

from repro.photo.detect import detect_sources
from repro.photo.photometry import psf_flux, aperture_flux
from repro.photo.shapes import measure_shape, ShapeMeasurement
from repro.photo.classify import classify_star_galaxy
from repro.photo.pipeline import run_photo, PhotoConfig

__all__ = [
    "detect_sources",
    "psf_flux",
    "aperture_flux",
    "measure_shape",
    "ShapeMeasurement",
    "classify_star_galaxy",
    "run_photo",
    "PhotoConfig",
]
