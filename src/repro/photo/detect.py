"""Source detection: matched filter + thresholding + peak finding."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.survey.image import Image

__all__ = ["detect_sources"]


def detect_sources(
    image: Image,
    threshold_sigma: float = 4.0,
    min_separation: float = 3.0,
) -> np.ndarray:
    """Find candidate source positions in one image.

    The image is convolved with a Gaussian matched to the PSF core (the
    optimal filter for isolated point sources on flat sky), the sky level is
    subtracted, and local maxima above ``threshold_sigma`` times the filtered
    noise are returned.

    Returns an array of sky positions, shape ``(n, 2)``, brightest first.
    """
    meta = image.meta
    sigma_psf = float(np.sqrt(max(np.trace(meta.psf.second_moment()) / 2.0, 0.25)))
    data = image.pixels - meta.sky_level
    if image.mask is not None:
        # Defective pixels are interpolated to zero excess (sky) before
        # filtering so cosmic rays do not masquerade as point sources.
        data = np.where(image.mask, 0.0, data)

    smoothed = ndimage.gaussian_filter(data, sigma=sigma_psf, mode="nearest")
    # Noise of the filtered background: Poisson sky variance shrunk by the
    # filter's effective averaging (sum of squared kernel weights).
    kernel_norm = 1.0 / (4.0 * np.pi * sigma_psf ** 2)
    noise = np.sqrt(meta.sky_level * kernel_norm)
    thresh = threshold_sigma * noise

    footprint = ndimage.maximum_filter(
        smoothed, size=max(int(2 * min_separation) | 1, 3), mode="nearest"
    )
    peaks = (smoothed == footprint) & (smoothed > thresh)
    # Border pixels produce spurious plateau maxima under the "nearest"
    # boundary mode; real sources that close to the edge are unmeasurable
    # anyway (they belong to the neighboring field).
    margin = 2
    peaks[:margin, :] = peaks[-margin:, :] = False
    peaks[:, :margin] = peaks[:, -margin:] = False
    ys, xs = np.nonzero(peaks)
    if len(xs) == 0:
        return np.zeros((0, 2))

    order = np.argsort(-smoothed[ys, xs])
    xs, ys = xs[order], ys[order]

    # Refine to sub-pixel with a quadratic fit on the smoothed image.
    positions = []
    for x, y in zip(xs, ys):
        fx = _parabolic_offset(smoothed, y, x, axis=1)
        fy = _parabolic_offset(smoothed, y, x, axis=0)
        positions.append([x + fx, y + fy])
    pix = np.asarray(positions)
    return meta.wcs.pix_to_sky(pix)


def _parabolic_offset(img: np.ndarray, y: int, x: int, axis: int) -> float:
    """Sub-pixel peak offset along one axis from a 3-point parabola."""
    h, w = img.shape
    if axis == 1:
        if x <= 0 or x >= w - 1:
            return 0.0
        lo, c, hi = img[y, x - 1], img[y, x], img[y, x + 1]
    else:
        if y <= 0 or y >= h - 1:
            return 0.0
        lo, c, hi = img[y - 1, x], img[y, x], img[y + 1, x]
    denom = lo - 2 * c + hi
    if abs(denom) < 1e-12:
        return 0.0
    offset = 0.5 * (lo - hi) / denom
    return float(np.clip(offset, -0.5, 0.5))
