"""Star/galaxy classification by concentration.

The classic heuristic: compare the source's measured size against the PSF.
Point sources (stars) have concentration ~= 1; anything convincingly broader
is called a galaxy.  The threshold is a hand-tuned constant — exactly the
kind of "weight on prior information" the paper argues heuristics cannot set
in a principled way.
"""

from __future__ import annotations

from repro.photo.shapes import ShapeMeasurement

__all__ = ["classify_star_galaxy"]


def classify_star_galaxy(
    shape: ShapeMeasurement,
    threshold: float = 1.25,
) -> bool:
    """Return True when the detection is (heuristically) a galaxy.

    ``threshold`` is the concentration above which a source is called
    extended; the default (1.25) is tuned on synthetic fields with ~SDSS seeing: low enough to catch marginally resolved galaxies, high enough that moment noise on faint stars does not cross it
    (the same way Photo's cuts were tuned on real commissioning data).
    """
    return shape.concentration > threshold
