"""Shape measurement: adaptive second moments with PSF deconvolution."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians import moments_to_ellipse
from repro.profiles.galaxy import GalaxyShape, galaxy_density
from repro.survey.image import Image
from repro.survey.render import source_patch

__all__ = ["ShapeMeasurement", "measure_shape"]


@dataclass
class ShapeMeasurement:
    """Observed and PSF-deconvolved morphology of one detection.

    Attributes
    ----------
    observed_moments:
        Second-moment matrix of the detection, including PSF smearing.
    intrinsic_moments:
        PSF-deconvolved moments (observed minus PSF; floored at zero).
    axis_ratio, angle, radius_px:
        Ellipse parameters of the intrinsic moments; ``radius_px`` is the
        moment-matched effective radius of the major axis.
    concentration:
        sqrt(det(observed)) / sqrt(det(PSF)) — 1.0 for point sources.
    frac_dev:
        Heuristic profile type from chi-square comparison of the two
        canonical profiles (0 = exponential, 1 = de Vaucouleurs).
    """

    observed_moments: np.ndarray
    intrinsic_moments: np.ndarray
    axis_ratio: float
    angle: float
    radius_px: float
    concentration: float
    frac_dev: float


#: Moment-to-half-light-radius conversion for an exponential profile:
#: <r^2> of exp profile with R_e = 1 is integral -> sigma_moment ~ 1.12 R_e.
_MOMENT_TO_RE_EXP = 1.0 / 1.12


def _weighted_moments(data: np.ndarray, xs, ys, cx, cy, w_sigma: float,
                      n_iter: int = 3):
    """Adaptive Gaussian-weighted second moments with exact Gaussian
    deconvolution of the weight.

    For a Gaussian source with covariance ``T`` weighted by a Gaussian of
    covariance ``W``, the measured moments are ``(T^-1 + W^-1)^-1``; we
    invert that relation exactly with the final weight, which also
    self-corrects the measured PSF reference used by the concentration
    classifier.
    """
    sigma = w_sigma
    mxx = myy = sigma ** 2
    mxy = 0.0
    for _ in range(n_iter):
        w = np.exp(-0.5 * ((xs - cx) ** 2 + (ys - cy) ** 2) / (2.0 * sigma ** 2))
        ww = np.clip(data, 0.0, None) * w
        total = ww.sum()
        if total <= 0:
            break
        mxx = float((ww * (xs - cx) ** 2).sum() / total)
        mxy = float((ww * (xs - cx) * (ys - cy)).sum() / total)
        myy = float((ww * (ys - cy) ** 2).sum() / total)
        sigma = max(np.sqrt(max(0.5 * (mxx + myy), 0.25)), 0.7)
    measured = np.array([[mxx, mxy], [mxy, myy]])
    w_cov_inv = np.eye(2) / (2.0 * sigma ** 2)
    m_inv = np.linalg.inv(measured + 1e-9 * np.eye(2))
    t_inv = m_inv - w_cov_inv
    evals, evecs = np.linalg.eigh(t_inv)
    evals = np.maximum(evals, 1e-3)  # keep the deconvolution bounded
    return np.linalg.inv((evecs * evals) @ evecs.T)


def measure_shape(image: Image, sky_position: np.ndarray,
                  radius: float = 12.0) -> ShapeMeasurement:
    """Measure a detection's morphology on one image."""
    bounds = source_patch(image, sky_position, radius)
    if bounds is None:
        raise ValueError("source is off the image")
    x0, x1, y0, y1 = bounds
    ys, xs = np.mgrid[y0:y1, x0:x1]
    px, py = image.meta.wcs.sky_to_pix(np.asarray(sky_position))
    data = image.pixels[y0:y1, x0:x1] - image.meta.sky_level

    psf_true = image.meta.psf.second_moment()
    w_sigma = float(np.sqrt(max(np.trace(psf_true) / 2.0, 0.25)))
    observed = _weighted_moments(data, xs, ys, px, py, w_sigma)

    # Measure the PSF model through the identical adaptive pipeline so any
    # residual estimator bias cancels in the comparison.
    psf_img = image.meta.psf.density(xs - px, ys - py)
    psf_m = _weighted_moments(psf_img, xs, ys, px, py, w_sigma)

    intrinsic = observed - psf_m
    evals, evecs = np.linalg.eigh(intrinsic)
    evals = np.maximum(evals, 1e-3)
    intrinsic_psd = (evecs * evals) @ evecs.T

    axis_ratio, angle, sigma_int = moments_to_ellipse(
        intrinsic_psd[0, 0], intrinsic_psd[0, 1], intrinsic_psd[1, 1]
    )
    radius_px = sigma_int * _MOMENT_TO_RE_EXP / max(np.sqrt(axis_ratio), 0.3)

    det_obs = max(np.linalg.det(observed), 1e-9)
    det_psf = max(np.linalg.det(psf_m), 1e-9)
    concentration = float((det_obs / det_psf) ** 0.25)

    frac_dev = _profile_type(image, data, xs, ys, px, py,
                             axis_ratio, angle, radius_px)

    return ShapeMeasurement(
        observed_moments=observed,
        intrinsic_moments=intrinsic_psd,
        axis_ratio=float(np.clip(axis_ratio, 0.05, 1.0)),
        angle=float(angle % np.pi),
        radius_px=float(np.clip(radius_px, 0.25, 30.0)),
        concentration=concentration,
        frac_dev=frac_dev,
    )


def _profile_type(image, data, xs, ys, px, py, axis_ratio, angle, radius_px):
    """Chi-square comparison of exponential vs de Vaucouleurs models with the
    measured ellipse, returning a hard 0/1 decision softened by the relative
    fit quality (Photo's "fracDeV")."""
    chis = []
    total = max(data.sum(), 1e-9)
    for frac_dev in (0.0, 1.0):
        shape = GalaxyShape(frac_dev=frac_dev,
                            axis_ratio=max(axis_ratio, 0.1),
                            angle=angle,
                            radius=max(radius_px, 0.3))
        model = galaxy_density(shape, image.meta.psf, xs - px, ys - py) * total
        var = np.maximum(image.meta.sky_level + np.clip(data, 0, None), 1.0)
        chis.append(float(((data - model) ** 2 / var).sum()))
    chi_exp, chi_dev = chis
    # Softmax on chi-square difference: ~0 for clearly-exponential, ~1 for
    # clearly-de-Vaucouleurs, ~0.5 when indistinguishable.
    scale = max(0.05 * min(chi_exp, chi_dev), 1.0)
    return float(1.0 / (1.0 + np.exp((chi_dev - chi_exp) / scale)))
