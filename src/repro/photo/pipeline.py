"""The end-to-end Photo-style pipeline: images of one field -> catalog.

Mirrors the structure of the SDSS Photo pipeline on a single field: detect on
the reference band, then measure positions, per-band fluxes, shapes and type
per detection.  Deliberately single-field (the heuristic baseline "ignores
all but one image in regions with overlap", Figure 1 caption) and entirely
point-estimate (no uncertainty fields are filled in).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NUM_BANDS, NUM_COLORS, REFERENCE_BAND
from repro.core.catalog import Catalog, CatalogEntry
from repro.core.fluxes import colors_from_fluxes
from repro.knobs import knob
from repro.photo.classify import classify_star_galaxy
from repro.photo.detect import detect_sources
from repro.photo.photometry import aperture_flux, psf_flux
from repro.photo.shapes import measure_shape
from repro.survey.image import Image

__all__ = ["PhotoConfig", "run_photo"]


@dataclass
class PhotoConfig:
    """Hand-tuned thresholds of the heuristic pipeline.

    All fields are ``fingerprinted`` (:func:`repro.knobs.knob`): the whole
    config lands in the checkpoint fingerprint through the ``photo`` key
    of ``driver/pipeline.py::_fingerprint``.
    """

    threshold_sigma: float = knob(4.0, provenance="fingerprinted")
    min_separation: float = knob(3.0, provenance="fingerprinted")
    concentration_threshold: float = knob(1.25, provenance="fingerprinted")
    aperture_radius: float = knob(6.0, provenance="fingerprinted")
    measure_radius: float = knob(12.0, provenance="fingerprinted")


def run_photo(field_images: list[Image], config: PhotoConfig | None = None) -> Catalog:
    """Run the heuristic pipeline on one field's images (one per band).

    Detection runs on the reference (r) band; photometry runs per band;
    shapes and classification use the reference band.
    """
    if config is None:
        config = PhotoConfig()
    by_band = {im.band: im for im in field_images}
    bad = sorted(b for b in by_band if not 0 <= b < NUM_BANDS)
    if bad:
        raise ValueError(
            "field contains images with invalid band ids %r "
            "(bands must be in [0, %d))" % (bad, NUM_BANDS)
        )
    if REFERENCE_BAND not in by_band:
        raise ValueError("Photo requires the reference (r) band")
    ref = by_band[REFERENCE_BAND]

    positions = detect_sources(
        ref,
        threshold_sigma=config.threshold_sigma,
        min_separation=config.min_separation,
    )

    catalog = Catalog()
    for pos in positions:
        try:
            shape = measure_shape(ref, pos, radius=config.measure_radius)
        except ValueError:
            continue
        is_galaxy = classify_star_galaxy(
            shape, threshold=config.concentration_threshold
        )

        fluxes = np.full(NUM_BANDS, np.nan)
        for band, im in by_band.items():
            if is_galaxy:
                fluxes[band] = aperture_flux(im, pos, radius=config.aperture_radius)
            else:
                fluxes[band] = psf_flux(im, pos, radius=config.measure_radius)
        # Missing bands fall back to the reference flux (flat colors).
        ref_flux = fluxes[REFERENCE_BAND]
        if not np.isfinite(ref_flux) or ref_flux <= 0:
            continue
        fluxes = np.where(np.isfinite(fluxes) & (fluxes > 0), fluxes,
                          ref_flux)
        colors = colors_from_fluxes(fluxes)
        if colors.shape != (NUM_COLORS,):
            continue

        catalog.append(CatalogEntry(
            position=np.asarray(pos, dtype=float),
            is_galaxy=bool(is_galaxy),
            flux_r=float(ref_flux),
            colors=colors,
            gal_frac_dev=shape.frac_dev,
            gal_axis_ratio=shape.axis_ratio,
            gal_angle=shape.angle,
            gal_radius_px=shape.radius_px,
        ))
    return catalog
