"""The knob-provenance vocabulary: how a config field declares its class.

Every result-relevant decision in this repo is a *knob* — a dataclass field
of one of the driver-facing config classes (``DriverConfig``,
``ParallelRegionConfig``, ``JointConfig``, ``OptimizeConfig``,
``PhotoConfig``, ``DtreeConfig``) or a registered ``REPRO_*`` environment
variable.  The checkpoint/resume story hangs on every knob being correctly
partitioned into *fingerprinted* vs *not*, and until PR 9 that partition
lived only in hand-maintained ``d.pop(...)`` calls and docstring prose.
Now it is a machine-readable declaration carried by the knob itself:

``fingerprinted``
    Result-affecting (or conservatively recorded as such): the knob's
    resolved value is part of ``driver/pipeline.py::_fingerprint``, and a
    checkpoint refuses to resume under a different value.

``neutral``
    Result-neutral *by hard invariant*: any value produces bit-for-bit
    identical results (an execution strategy — batching layout, cache
    blocking, occupancy tuning).  Excluded from the fingerprint, and the
    invariant is empirically pinned by the neutrality fuzzer
    (``tests/test_provenance.py``).

``observational``
    Detection/diagnostic instrumentation (race detector, schedule
    verifier, numeric sanitizer, bench smoke modes): results are
    bit-identical with it on or off; its job is to *prove* that.
    Excluded from the fingerprint; also fuzzer-pinned.

``scheduling``
    Worker layout and work-distribution knobs (node counts, executors,
    batch grants, prefetch depth, Dtree shape): results are independent
    of completion order and memory model, so a run may legitimately
    resume under a different value.  Excluded from the fingerprint;
    fuzzer-pinned where a toggle keeps the run comparable.

The declarations are *cross-checked*, not trusted: the static pass in
:mod:`repro.analysis.provenance` (KNOB3xx rules, ``python -m
repro.analysis``) verifies every declaration against the actual
fingerprint key set and against where the knob's value flows, and the
neutrality fuzzer verifies every "not fingerprinted" claim dynamically.
See the "Knob provenance" section of ``docs/determinism.md``.
"""

from __future__ import annotations

from dataclasses import MISSING, field

__all__ = ["PROVENANCE_CLASSES", "knob", "provenance_of"]

#: The four provenance classes, in decreasing order of result impact.
PROVENANCE_CLASSES = ("fingerprinted", "neutral", "observational",
                      "scheduling")


def knob(default=MISSING, *, provenance: str, default_factory=MISSING):
    """A dataclass field carrying an explicit provenance declaration.

    Drop-in for ``dataclasses.field``: ``knob(2, provenance="scheduling")``
    or ``knob(default_factory=PhotoConfig, provenance="fingerprinted")``.
    The declaration lands in ``field.metadata["provenance"]``, where both
    the runtime manifest and the static KNOB3xx analyzer read it.
    """
    if provenance not in PROVENANCE_CLASSES:
        raise ValueError(
            "provenance must be one of %r, got %r"
            % (PROVENANCE_CLASSES, provenance)
        )
    if default_factory is not MISSING:
        return field(default_factory=default_factory,
                     metadata={"provenance": provenance})
    return field(default=default, metadata={"provenance": provenance})


def provenance_of(dataclass_field) -> str | None:
    """The declared provenance of one ``dataclasses.Field`` (None when the
    field carries no declaration — which the KNOB300 lint rejects for the
    knob config classes)."""
    return dataclass_field.metadata.get("provenance")
