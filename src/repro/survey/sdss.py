"""Survey layout: stripes, runs, and overlapping fields.

SDSS scans the sky in *stripes* along great circles; each night's scan is a
*run* consisting of consecutive *fields* (Figure 3 of the paper).  Adjacent
fields within a run overlap by ~10%, adjacent runs overlap laterally, and
Stripe 82 was imaged ~80 times.  This module reproduces that geometry on the
flat synthetic sky so that (a) most sources appear in several images and (b)
coverage is non-uniform — both load-bearing facts for the paper's task
decomposition and scaling story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.catalog import Catalog
from repro.survey.image import Image
from repro.survey.synth import SyntheticSkyConfig, generate_catalog, generate_field_images

__all__ = ["FieldSpec", "SurveyConfig", "SurveyLayout", "build_survey", "stripe82"]


@dataclass(frozen=True)
class FieldSpec:
    """Geometry of one field: where it sits on the sky."""

    run: int
    camcol: int
    field: int
    epoch: int
    origin: tuple[float, float]
    shape_hw: tuple[int, int]

    @property
    def field_id(self) -> tuple:
        return (self.run, self.camcol, self.field)

    def bounds(self) -> tuple[float, float, float, float]:
        """(x_min, x_max, y_min, y_max) sky bounds."""
        return (
            self.origin[0], self.origin[0] + self.shape_hw[1],
            self.origin[1], self.origin[1] + self.shape_hw[0],
        )


@dataclass
class SurveyConfig:
    """Layout parameters of a synthetic survey region.

    Defaults give a small but structurally faithful survey: two overlapping
    runs of overlapping fields.  Field sizes are kept modest so tests run
    quickly; the geometry (overlap fractions) matches SDSS.
    """

    field_width: int = 100
    field_height: int = 80
    fields_per_run: int = 3
    n_runs: int = 2
    overlap_frac: float = 0.1
    run_overlap_frac: float = 0.25
    sky: SyntheticSkyConfig = field(default_factory=SyntheticSkyConfig)


@dataclass
class SurveyLayout:
    """A generated survey: geometry, ground truth, and pixel data."""

    config: SurveyConfig
    field_specs: list[FieldSpec]
    truth: Catalog
    images: list[Image]

    def sky_bounds(self) -> tuple[float, float, float, float]:
        xs0 = [s.bounds()[0] for s in self.field_specs]
        xs1 = [s.bounds()[1] for s in self.field_specs]
        ys0 = [s.bounds()[2] for s in self.field_specs]
        ys1 = [s.bounds()[3] for s in self.field_specs]
        return min(xs0), max(xs1), min(ys0), max(ys1)

    def images_covering(self, position: np.ndarray, margin: float = 5.0) -> list[Image]:
        """All images whose footprint contains the sky position."""
        return [im for im in self.images if im.contains_sky(position, margin=margin)]

    def coverage_counts(self) -> np.ndarray:
        """Number of images covering each source — between 5 and 480 in real
        SDSS (paper Section IV-A); non-uniform here too."""
        return np.array([
            len(self.images_covering(e.position)) for e in self.truth
        ])


def plan_fields(config: SurveyConfig, epoch: int = 0, run_offset: int = 0) -> list[FieldSpec]:
    """Lay out field origins for every run of a survey epoch."""
    specs = []
    step_x = config.field_width * (1.0 - config.overlap_frac)
    step_y = config.field_height * (1.0 - config.run_overlap_frac)
    for run in range(config.n_runs):
        for f in range(config.fields_per_run):
            specs.append(FieldSpec(
                run=run + 1000 * epoch + run_offset,
                camcol=1,
                field=f,
                epoch=epoch,
                origin=(f * step_x, run * step_y),
                shape_hw=(config.field_height, config.field_width),
            ))
    return specs


def build_survey(
    config: SurveyConfig | None = None,
    rng: np.random.Generator | None = None,
    n_epochs: int = 1,
) -> SurveyLayout:
    """Generate a full synthetic survey: truth catalog + all field images.

    With ``n_epochs > 1`` every field is imaged repeatedly under varying
    conditions (the Stripe-82 situation).
    """
    if config is None:
        config = SurveyConfig()
    if rng is None:
        rng = np.random.default_rng()

    specs: list[FieldSpec] = []
    for epoch in range(n_epochs):
        specs.extend(plan_fields(config, epoch=epoch))

    # Ground truth spans the union footprint plus a margin, so edge sources
    # half-off every image still exist.
    x_max = max(s.bounds()[1] for s in specs)
    y_max = max(s.bounds()[3] for s in specs)
    truth = generate_catalog((0.0, x_max), (0.0, y_max), config.sky, rng=rng)

    images: list[Image] = []
    for spec in specs:
        images.extend(generate_field_images(
            truth,
            origin=spec.origin,
            shape_hw=spec.shape_hw,
            config=config.sky,
            rng=rng,
            field_id=spec.field_id,
            epoch=spec.epoch,
        ))
    return SurveyLayout(config=config, field_specs=specs, truth=truth, images=images)


def stripe82(
    config: SurveyConfig | None = None,
    n_epochs: int = 20,
    rng: np.random.Generator | None = None,
) -> SurveyLayout:
    """A Stripe-82-style survey: the same sky imaged ``n_epochs`` times.

    The real Stripe 82 has ~80 epochs; 20 is enough to make the coadd's
    signal-to-noise dominate single-epoch imaging while keeping tests fast.
    """
    if config is None:
        config = SurveyConfig(n_runs=1, fields_per_run=2)
    return build_survey(config=config, rng=rng, n_epochs=n_epochs)
