"""The Image container: pixels plus the metadata vector Lambda_n.

The paper's model attaches to each image a constant metadata vector
describing its sky location and observing conditions (Figure 2).  Here that
is :class:`ImageMeta`: the WCS, PSF, photometric calibration, sky background
and band.  Pixel values are photon (photo-electron) counts, Poisson
distributed under the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.psf.gmm import MixturePSF
from repro.survey.wcs import AffineWCS

__all__ = ["ImageMeta", "Image"]


@dataclass(frozen=True)
class ImageMeta:
    """Per-image constants (the model's Lambda_n).

    Attributes
    ----------
    band:
        Photometric band index (0..4 for u,g,r,i,z).
    wcs:
        Sky-to-pixel affine map.
    psf:
        Point spread function as a Gaussian mixture.
    sky_level:
        Expected background photons per pixel.
    calibration:
        Photons per nanomaggy ("nelec per nmgy" in SDSS terms).
    field_id:
        Identifier of the field this image belongs to: (run, camcol, field).
    epoch:
        Observation epoch index (distinguishes repeated Stripe-82 imaging).
    """

    band: int
    wcs: AffineWCS
    psf: MixturePSF
    sky_level: float
    calibration: float
    field_id: tuple = (0, 0, 0)
    epoch: int = 0

    def __post_init__(self):
        if self.sky_level <= 0:
            raise ValueError("sky_level must be positive")
        if self.calibration <= 0:
            raise ValueError("calibration must be positive")


@dataclass
class Image:
    """Pixel data plus metadata for a single band of a single field.

    ``mask`` flags defective pixels (cosmic-ray hits, saturation, bad
    columns): True = unusable.  Masked pixels carry no information about
    the sky and are excluded from inference and photometry.
    """

    pixels: np.ndarray
    meta: ImageMeta
    mask: np.ndarray | None = None

    def __post_init__(self):
        self.pixels = np.asarray(self.pixels, dtype=float)
        if self.pixels.ndim != 2:
            raise ValueError("pixels must be 2-D")
        if self.mask is not None:
            self.mask = np.asarray(self.mask, dtype=bool)
            if self.mask.shape != self.pixels.shape:
                raise ValueError("mask shape must match pixels")

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def band(self) -> int:
        return self.meta.band

    def sky_bounds(self) -> tuple[float, float, float, float]:
        """Bounding box of the image footprint in sky coordinates,
        ``(x_min, x_max, y_min, y_max)``."""
        corners = np.array([
            [0.0, 0.0],
            [self.width, 0.0],
            [0.0, self.height],
            [self.width, self.height],
        ]) - 0.5
        sky = self.meta.wcs.pix_to_sky(corners)
        return (
            float(sky[:, 0].min()), float(sky[:, 0].max()),
            float(sky[:, 1].min()), float(sky[:, 1].max()),
        )

    def contains_sky(self, position: np.ndarray, margin: float = 0.0) -> bool:
        """Whether a sky position falls inside the image footprint (with an
        optional pixel margin, so sources just off the edge still count —
        their light spills onto the image)."""
        px, py = self.meta.wcs.sky_to_pix(np.asarray(position))
        return (
            -0.5 - margin <= px <= self.width - 0.5 + margin
            and -0.5 - margin <= py <= self.height - 0.5 + margin
        )

    def nbytes(self) -> int:
        return self.pixels.nbytes
