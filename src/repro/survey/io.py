"""On-disk field files.

SDSS stores each field as a ~12 MB file; Celeste's I/O pattern (and the Burst
Buffer analysis in the paper) is driven by loading many such files per task.
We serialize fields to ``.npz`` with the same granularity so the cluster
simulator's byte counts correspond to real file sizes.
"""

from __future__ import annotations

import os
import threading
import time
import zipfile
from collections import OrderedDict, deque

import numpy as np
from numpy.lib import format as _npy_format

from repro.psf.gmm import MixturePSF
from repro.survey.image import Image, ImageMeta
from repro.survey.wcs import AffineWCS

__all__ = [
    "save_field",
    "load_field",
    "field_metadata",
    "field_file_size",
    "FieldPrefetcher",
]


def save_field(path: str, images: list[Image]) -> int:
    """Write one field (all bands) to a single ``.npz`` file.

    Returns the number of bytes written.
    """
    payload = {"n_images": np.asarray(len(images))}
    for i, im in enumerate(images):
        meta = im.meta
        payload["pixels_%d" % i] = im.pixels
        payload["band_%d" % i] = np.asarray(meta.band)
        payload["wcs_matrix_%d" % i] = meta.wcs.matrix
        payload["wcs_sky_ref_%d" % i] = meta.wcs.sky_ref
        payload["wcs_pix_ref_%d" % i] = meta.wcs.pix_ref
        payload["psf_weights_%d" % i] = meta.psf.weights
        payload["psf_means_%d" % i] = meta.psf.means
        payload["psf_covs_%d" % i] = meta.psf.covs
        payload["sky_level_%d" % i] = np.asarray(meta.sky_level)
        payload["calibration_%d" % i] = np.asarray(meta.calibration)
        payload["field_id_%d" % i] = np.asarray(meta.field_id)
        payload["epoch_%d" % i] = np.asarray(meta.epoch)
        if im.mask is not None:
            payload["mask_%d" % i] = im.mask
    with open(path, "wb") as fh:
        np.savez(fh, **payload)
    return os.path.getsize(path)


def load_field(path: str) -> list[Image]:
    """Read a field file written by :func:`save_field`."""
    with np.load(path) as data:
        n = int(data["n_images"])
        images = []
        for i in range(n):
            wcs = AffineWCS(
                matrix=data["wcs_matrix_%d" % i],
                sky_ref=data["wcs_sky_ref_%d" % i],
                pix_ref=data["wcs_pix_ref_%d" % i],
            )
            psf = MixturePSF(
                weights=data["psf_weights_%d" % i],
                means=data["psf_means_%d" % i],
                covs=data["psf_covs_%d" % i],
            )
            meta = ImageMeta(
                band=int(data["band_%d" % i]),
                wcs=wcs,
                psf=psf,
                sky_level=float(data["sky_level_%d" % i]),
                calibration=float(data["calibration_%d" % i]),
                field_id=tuple(int(x) for x in data["field_id_%d" % i]),
                epoch=int(data["epoch_%d" % i]),
            )
            mask = data["mask_%d" % i] if "mask_%d" % i in data else None
            images.append(Image(pixels=data["pixels_%d" % i], meta=meta,
                                mask=mask))
    return images


def _npy_member_shape(zf: zipfile.ZipFile, name: str) -> tuple:
    """Shape of one ``.npy`` member, reading only its header bytes."""
    with zf.open(name) as f:
        version = _npy_format.read_magic(f)
        if version == (1, 0):
            shape, _, _ = _npy_format.read_array_header_1_0(f)
        else:
            shape, _, _ = _npy_format.read_array_header_2_0(f)
    return shape


def field_metadata(path: str) -> list[tuple]:
    """Per-image ``(sky_bounds, (height, width), band)`` of a field file.

    Reads only the small metadata arrays and the pixel arrays' ``.npy``
    *headers* — never the pixel data — so a survey index over thousands of
    field files costs header I/O, not a full read per file.  The bounds
    arithmetic matches :meth:`Image.sky_bounds` exactly (same corners, same
    WCS values round-tripped losslessly through the file), so geometry
    computed from this metadata is identical to geometry computed from the
    loaded images.
    """
    out = []
    with zipfile.ZipFile(path) as zf, np.load(path) as data:
        for i in range(int(data["n_images"])):
            h, w = _npy_member_shape(zf, "pixels_%d.npy" % i)
            wcs = AffineWCS(
                matrix=data["wcs_matrix_%d" % i],
                sky_ref=data["wcs_sky_ref_%d" % i],
                pix_ref=data["wcs_pix_ref_%d" % i],
            )
            corners = np.array([
                [0.0, 0.0], [w, 0.0], [0.0, h], [w, h],
            ]) - 0.5
            sky = wcs.pix_to_sky(corners)
            bounds = (
                float(sky[:, 0].min()), float(sky[:, 0].max()),
                float(sky[:, 1].min()), float(sky[:, 1].max()),
            )
            out.append((bounds, (int(h), int(w)), int(data["band_%d" % i])))
    return out


#: Container overhead per stored array in an uncompressed ``.npz``: the
#: ``.npy`` header plus the zip local-file header and central-directory
#: entry (measured; name-length variation moves it by a few bytes).
_NPZ_PER_ARRAY_BYTES = 254

#: Arrays stored per image by :func:`save_field`, excluding the mask:
#: pixels, band, 3 WCS arrays, 3 PSF arrays, sky level, calibration,
#: field id, epoch.
_ARRAYS_PER_IMAGE = 12


def field_file_size(shape_hw: tuple[int, int], n_bands: int = 5,
                    masked: bool = False, psf_components: int = 2) -> int:
    """Bytes of a field file, computed from the real :func:`save_field`
    payload: float64 pixels, the optional bool mask plane, and every
    per-image metadata array (WCS, PSF mixture, calibration, ids), plus the
    per-array ``.npz`` container overhead.

    The cluster simulator's I/O model charges Burst Buffer time per byte,
    so this must track what :func:`save_field` actually writes — the old
    flat ``h*w*8 + 1024`` estimate ignored the mask plane and the metadata
    arrays and undercounted masked fields.
    """
    h, w = shape_hw
    # Scalar elements of the per-image metadata arrays (all float64/int64):
    # band(1) + wcs matrix/sky_ref/pix_ref (4+2+2) + psf weights/means/covs
    # (K + 2K + 4K) + sky_level(1) + calibration(1) + field_id(3) + epoch(1).
    meta_elements = 1 + 4 + 2 + 2 + 7 * psf_components + 1 + 1 + 3 + 1
    per_image = (
        h * w * 8
        + meta_elements * 8
        + _ARRAYS_PER_IMAGE * _NPZ_PER_ARRAY_BYTES
    )
    if masked:
        per_image += h * w + _NPZ_PER_ARRAY_BYTES  # bool plane, one byte/px
    # The n_images scalar array rounds out the archive.
    return n_bands * per_image + 8 + _NPZ_PER_ARRAY_BYTES


class FieldPrefetcher:
    """Loads field files on a background thread ahead of need.

    The paper stages field files through the Cori Burst Buffer so image
    loads overlap computation; this is the single-node analogue.  The
    driver *hints* paths the scheduler's look-ahead says are coming
    (:meth:`hint`), a daemon thread loads them into a bounded LRU cache,
    and :meth:`get` returns a cached field (a hit) or falls back to a
    synchronous load (a miss — counted, because misses are stalls the
    Burst Buffer failed to hide).
    """

    def __init__(self, loader=load_field, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._loader = loader
        self._capacity = capacity
        self._cache: OrderedDict[str, list[Image]] = OrderedDict()
        self._queue: deque[str] = deque()   # hinted, load not started yet
        self._inflight: str | None = None   # being loaded right now
        self._cv = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        self.hits = 0
        self.misses = 0
        self.prefetched = 0
        self.prefetch_seconds = 0.0

    def _ensure_thread(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if self._closed:
                    return
                path = self._queue.popleft()
                self._inflight = path
            t0 = time.perf_counter()
            try:
                images = self._loader(path)
            except BaseException:
                with self._cv:
                    self._inflight = None
                    self._cv.notify_all()
                continue  # the consumer's synchronous load reports the error
            with self._cv:
                if not self._closed:  # a closed cache must stay released
                    self._insert(path, images)
                    self.prefetched += 1
                    self.prefetch_seconds += time.perf_counter() - t0
                self._inflight = None
                self._cv.notify_all()

    def _insert(self, path: str, images: list[Image]) -> None:
        self._cache[path] = images
        self._cache.move_to_end(path)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)

    def hint(self, paths) -> None:
        """Enqueue background loads for paths not already cached/in flight."""
        with self._cv:
            if self._closed:
                return
            for path in paths:
                if (path not in self._cache and path != self._inflight
                        and path not in self._queue):
                    self._queue.append(path)
            if self._queue:
                self._ensure_thread()
                self._cv.notify_all()

    def get(self, path: str) -> list[Image]:
        """The field at ``path``.

        Cached, or completed while we waited on its in-flight load: a hit
        (the prefetch overlapped at least part of the latency).  Merely
        hinted but not started, evicted, or never hinted: the caller loads
        it synchronously right now — a miss, the stall the Burst Buffer
        failed to hide — rather than queueing behind unrelated prefetches.
        """
        with self._cv:
            while path == self._inflight:
                self._cv.wait()
            if path in self._cache:
                self.hits += 1
                self._cache.move_to_end(path)
                return self._cache[path]
            try:
                self._queue.remove(path)  # claim it before the thread does
            except ValueError:
                pass
            self.misses += 1
        images = self._loader(path)
        with self._cv:
            if not self._closed:
                self._insert(path, images)
        return images

    def stats(self) -> dict:
        with self._cv:
            return {
                "prefetch_hits": self.hits,
                "prefetch_misses": self.misses,
                "prefetched": self.prefetched,
                "prefetch_seconds": self.prefetch_seconds,
            }

    def close(self) -> None:
        """Shut down the loader thread and release the cache.  Idempotent.

        Wakes the daemon thread (it may be waiting on the condition
        variable for work that will never come), joins it, and drops the
        LRU cache — a prefetcher closed mid-run (e.g. by ``run_pipeline``'s
        ``finally`` after a stage raised) must not keep a loader thread or
        a cache of field images alive.  Later :meth:`get` calls still work,
        as plain synchronous uncached loads.
        """
        with self._cv:
            self._closed = True
            self._queue.clear()
            self._cache.clear()
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
