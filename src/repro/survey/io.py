"""On-disk field files.

SDSS stores each field as a ~12 MB file; Celeste's I/O pattern (and the Burst
Buffer analysis in the paper) is driven by loading many such files per task.
We serialize fields to ``.npz`` with the same granularity so the cluster
simulator's byte counts correspond to real file sizes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.psf.gmm import MixturePSF
from repro.survey.image import Image, ImageMeta
from repro.survey.wcs import AffineWCS

__all__ = ["save_field", "load_field", "field_file_size"]


def save_field(path: str, images: list[Image]) -> int:
    """Write one field (all bands) to a single ``.npz`` file.

    Returns the number of bytes written.
    """
    payload = {"n_images": np.asarray(len(images))}
    for i, im in enumerate(images):
        meta = im.meta
        payload["pixels_%d" % i] = im.pixels
        payload["band_%d" % i] = np.asarray(meta.band)
        payload["wcs_matrix_%d" % i] = meta.wcs.matrix
        payload["wcs_sky_ref_%d" % i] = meta.wcs.sky_ref
        payload["wcs_pix_ref_%d" % i] = meta.wcs.pix_ref
        payload["psf_weights_%d" % i] = meta.psf.weights
        payload["psf_means_%d" % i] = meta.psf.means
        payload["psf_covs_%d" % i] = meta.psf.covs
        payload["sky_level_%d" % i] = np.asarray(meta.sky_level)
        payload["calibration_%d" % i] = np.asarray(meta.calibration)
        payload["field_id_%d" % i] = np.asarray(meta.field_id)
        payload["epoch_%d" % i] = np.asarray(meta.epoch)
        if im.mask is not None:
            payload["mask_%d" % i] = im.mask
    with open(path, "wb") as fh:
        np.savez(fh, **payload)
    return os.path.getsize(path)


def load_field(path: str) -> list[Image]:
    """Read a field file written by :func:`save_field`."""
    with np.load(path) as data:
        n = int(data["n_images"])
        images = []
        for i in range(n):
            wcs = AffineWCS(
                matrix=data["wcs_matrix_%d" % i],
                sky_ref=data["wcs_sky_ref_%d" % i],
                pix_ref=data["wcs_pix_ref_%d" % i],
            )
            psf = MixturePSF(
                weights=data["psf_weights_%d" % i],
                means=data["psf_means_%d" % i],
                covs=data["psf_covs_%d" % i],
            )
            meta = ImageMeta(
                band=int(data["band_%d" % i]),
                wcs=wcs,
                psf=psf,
                sky_level=float(data["sky_level_%d" % i]),
                calibration=float(data["calibration_%d" % i]),
                field_id=tuple(int(x) for x in data["field_id_%d" % i]),
                epoch=int(data["epoch_%d" % i]),
            )
            mask = data["mask_%d" % i] if "mask_%d" % i in data else None
            images.append(Image(pixels=data["pixels_%d" % i], meta=meta,
                                mask=mask))
    return images


def field_file_size(shape_hw: tuple[int, int], n_bands: int = 5) -> int:
    """Approximate bytes of a field file (float64 pixels + small metadata)."""
    h, w = shape_hw
    return n_bands * (h * w * 8 + 1024)
