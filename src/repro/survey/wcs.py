"""World coordinate systems: affine maps between sky and pixel coordinates.

Real SDSS WCS solutions are locally affine to excellent accuracy; we adopt a
flat sky with a global pixel grid, so an affine transform captures exactly
what the inference code needs (positions and their Jacobians across images).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AffineWCS"]


@dataclass(frozen=True)
class AffineWCS:
    """Affine world coordinate system: ``pix = A @ (sky - sky_ref) + pix_ref``.

    Attributes
    ----------
    matrix:
        The 2x2 linear part ``A`` (identity for axis-aligned fields; scaling
        /rotation supported).
    sky_ref, pix_ref:
        Reference points in sky and pixel coordinates.
    """

    matrix: np.ndarray
    sky_ref: np.ndarray
    pix_ref: np.ndarray

    def __post_init__(self):
        m = np.asarray(self.matrix, dtype=float).reshape(2, 2)
        if abs(np.linalg.det(m)) < 1e-12:
            raise ValueError("WCS matrix must be invertible")
        object.__setattr__(self, "matrix", m)
        object.__setattr__(self, "sky_ref", np.asarray(self.sky_ref, dtype=float).reshape(2))
        object.__setattr__(self, "pix_ref", np.asarray(self.pix_ref, dtype=float).reshape(2))

    @staticmethod
    def translation(offset_x: float, offset_y: float) -> "AffineWCS":
        """An axis-aligned WCS where pixel (0,0) sits at sky ``(offset_x,
        offset_y)``."""
        return AffineWCS(np.eye(2), np.array([offset_x, offset_y]), np.zeros(2))

    def sky_to_pix(self, sky: np.ndarray) -> np.ndarray:
        """Map sky coordinates (..., 2) to pixel coordinates."""
        sky = np.asarray(sky, dtype=float)
        return (sky - self.sky_ref) @ self.matrix.T + self.pix_ref

    def pix_to_sky(self, pix: np.ndarray) -> np.ndarray:
        """Map pixel coordinates (..., 2) to sky coordinates."""
        pix = np.asarray(pix, dtype=float)
        inv = np.linalg.inv(self.matrix)
        return (pix - self.pix_ref) @ inv.T + self.sky_ref

    def sky_to_pix_taylor(self, sky_x, sky_y):
        """Taylor-mode sky->pixel map (position parameters carry derivatives)."""
        a = self.matrix
        dx = sky_x - float(self.sky_ref[0])
        dy = sky_y - float(self.sky_ref[1])
        px = a[0, 0] * dx + a[0, 1] * dy + float(self.pix_ref[0])
        py = a[1, 0] * dx + a[1, 1] * dy + float(self.pix_ref[1])
        return px, py

    def pixel_area_sky(self) -> float:
        """Sky area of one pixel (used to keep flux normalization consistent
        between differently-scaled images)."""
        return 1.0 / abs(np.linalg.det(self.matrix))
