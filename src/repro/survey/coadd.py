"""Coadds: combining repeated exposures into a high signal-to-noise image.

The paper's validation (Section VIII) combines ~80 Stripe-82 exposures into a
very deep image and treats a catalog built from it as ground truth.  Because
our synthetic exposures of a field can differ in calibration, sky and seeing,
the coadd is formed in calibrated units (sky-subtracted, divided by the
calibration), inverse-variance weighted.
"""

from __future__ import annotations

import numpy as np

from repro.psf.gmm import MixturePSF
from repro.survey.image import Image, ImageMeta

__all__ = ["coadd_images"]


def coadd_images(images: list[Image]) -> Image:
    """Coadd same-band, same-footprint exposures.

    All inputs must share a band and pixel grid shape (they may differ in
    PSF, sky and calibration).  The output is expressed back in the photon
    units of a reference exposure (the first), with an effective sky level
    and calibration, so downstream code treats a coadd exactly like a single
    very deep image.  The effective PSF is the weight-averaged mixture.
    """
    if not images:
        raise ValueError("need at least one image to coadd")
    band = images[0].band
    shape = images[0].pixels.shape
    for im in images:
        if im.band != band:
            raise ValueError("cannot coadd images from different bands")
        if im.pixels.shape != shape:
            raise ValueError("cannot coadd images with different shapes")

    # Inverse-variance weights in calibrated (nanomaggy) units: the variance
    # of (x - sky)/iota is approximately sky/iota^2 for background-dominated
    # pixels.
    weights = np.array([
        im.meta.calibration ** 2 / im.meta.sky_level for im in images
    ])
    weights = weights / weights.sum()

    calibrated = np.zeros(shape)
    for w, im in zip(weights, images):
        calibrated += w * (im.pixels - im.meta.sky_level) / im.meta.calibration

    ref = images[0].meta
    n = len(images)
    # Effective exposure: n-fold deeper in photon terms.
    eff_calibration = ref.calibration * n
    eff_sky = ref.sky_level * n
    pixels = calibrated * eff_calibration + eff_sky

    # Average PSF mixture (weights scaled by epoch weight).
    all_w, all_mu, all_cov = [], [], []
    for w, im in zip(weights, images):
        psf = im.meta.psf
        all_w.extend(w * psf.weights)
        all_mu.extend(psf.means)
        all_cov.extend(psf.covs)
    eff_psf = MixturePSF(
        weights=np.asarray(all_w),
        means=np.asarray(all_mu),
        covs=np.asarray(all_cov),
    )

    meta = ImageMeta(
        band=band,
        wcs=ref.wcs,
        psf=eff_psf,
        sky_level=eff_sky,
        calibration=eff_calibration,
        field_id=ref.field_id,
        epoch=-1,
    )
    return Image(pixels=pixels, meta=meta)
