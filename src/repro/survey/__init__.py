"""Synthetic SDSS-like survey substrate.

The paper processes 55 TB of real SDSS imaging.  This package provides the
equivalent code path on synthetic data: a survey layout of stripes, runs and
fields (with overlapping coverage, per-field PSF/sky/calibration), a renderer
that draws Poisson pixels from the generative model, Stripe-82-style repeated
imaging, on-disk field files, and coadds for ground-truth estimation.
"""

from repro.survey.wcs import AffineWCS
from repro.survey.image import Image, ImageMeta
from repro.survey.render import (
    expected_image,
    render_image,
    source_patch,
    source_radius,
)
from repro.survey.synth import (
    SyntheticSkyConfig,
    generate_catalog,
    generate_field_images,
    generate_survey_fields,
)
from repro.survey.sdss import SurveyConfig, SurveyLayout, FieldSpec, build_survey, stripe82
from repro.survey.io import (
    save_field,
    load_field,
    field_metadata,
    field_file_size,
    FieldPrefetcher,
)
from repro.survey.coadd import coadd_images

__all__ = [
    "AffineWCS",
    "Image",
    "ImageMeta",
    "expected_image",
    "render_image",
    "source_patch",
    "source_radius",
    "SyntheticSkyConfig",
    "generate_catalog",
    "generate_field_images",
    "generate_survey_fields",
    "SurveyConfig",
    "SurveyLayout",
    "FieldSpec",
    "build_survey",
    "stripe82",
    "save_field",
    "load_field",
    "field_metadata",
    "field_file_size",
    "FieldPrefetcher",
    "coadd_images",
]
