"""Rendering: evaluating the generative model's pixel rates.

The rate of pixel m in image n is

.. math::

    F_{nm} = \\epsilon_n + \\sum_s \\iota_n f_{s,b_n} g_{ns}(m)

where :math:`\\epsilon_n` is the sky background, :math:`\\iota_n` the
calibration, :math:`f_{s,b}` the band flux and :math:`g_{ns}` the
PSF-convolved light profile density.  Observed pixels are Poisson draws from
``F``.  The same patch machinery (bounding boxes of "active pixels") is used
by the renderer and by the ELBO.
"""

from __future__ import annotations

import numpy as np

from repro.profiles.galaxy import GalaxyShape, galaxy_density
from repro.survey.image import Image, ImageMeta

__all__ = [
    "source_radius",
    "source_patch",
    "add_source_rate",
    "expected_image",
    "render_image",
]


def source_radius(entry_or_radius, psf, min_radius: float = 4.0) -> float:
    """Patch radius (pixels) containing essentially all of a source's flux.

    Stars are PSF-limited; galaxies extend several effective radii beyond.
    Accepts either a catalog entry or a galaxy radius in pixels.  (Duck-typed
    to avoid importing the catalog module, which sits above this one in the
    package graph.)
    """
    psf_sigma = float(np.sqrt(max(np.trace(psf.second_moment()) / 2.0, 0.25)))
    if hasattr(entry_or_radius, "is_galaxy"):
        gal_r = entry_or_radius.gal_radius_px if entry_or_radius.is_galaxy else 0.0
    else:
        gal_r = float(entry_or_radius)
    return max(min_radius, 4.0 * psf_sigma + 4.0 * gal_r)


def source_patch(image: Image, sky_position: np.ndarray, radius: float):
    """Integer pixel bounds of the active patch for a source in an image.

    Returns ``(x0, x1, y0, y1)`` as half-open pixel index ranges, or ``None``
    when the patch misses the image entirely.
    """
    px, py = image.meta.wcs.sky_to_pix(np.asarray(sky_position))
    x0 = max(int(np.floor(px - radius)), 0)
    x1 = min(int(np.ceil(px + radius)) + 1, image.width)
    y0 = max(int(np.floor(py - radius)), 0)
    y1 = min(int(np.ceil(py + radius)) + 1, image.height)
    if x0 >= x1 or y0 >= y1:
        return None
    return (x0, x1, y0, y1)


def _patch_grids(bounds):
    x0, x1, y0, y1 = bounds
    ys, xs = np.mgrid[y0:y1, x0:x1]
    return xs.astype(float), ys.astype(float)


def add_source_rate(rate: np.ndarray, image_meta: ImageMeta, shape_hw: tuple,
                    entry: CatalogEntry, radius: float | None = None) -> None:
    """Accumulate one source's expected photon contribution into ``rate``."""
    h, w = shape_hw
    psf = image_meta.psf
    if radius is None:
        radius = source_radius(entry, psf)
    px, py = image_meta.wcs.sky_to_pix(entry.position)
    x0 = max(int(np.floor(px - radius)), 0)
    x1 = min(int(np.ceil(px + radius)) + 1, w)
    y0 = max(int(np.floor(py - radius)), 0)
    y1 = min(int(np.ceil(py + radius)) + 1, h)
    if x0 >= x1 or y0 >= y1:
        return
    ys, xs = np.mgrid[y0:y1, x0:x1]
    dx = xs - px
    dy = ys - py
    if entry.is_galaxy:
        shape = GalaxyShape(
            frac_dev=entry.gal_frac_dev,
            axis_ratio=entry.gal_axis_ratio,
            angle=entry.gal_angle,
            radius=entry.gal_radius_px,
        )
        dens = galaxy_density(shape, psf, dx, dy)
    else:
        dens = psf.density(dx, dy)
    flux = entry.band_fluxes()[image_meta.band]
    rate[y0:y1, x0:x1] += image_meta.calibration * flux * dens


def expected_image(entries, meta: ImageMeta, shape_hw: tuple) -> np.ndarray:
    """Expected photon counts E[F] for a set of sources plus sky."""
    rate = np.full(shape_hw, meta.sky_level, dtype=float)
    for entry in entries:
        add_source_rate(rate, meta, shape_hw, entry)
    return rate


def render_image(entries, meta: ImageMeta, shape_hw: tuple,
                 rng: np.random.Generator | None = None,
                 cosmic_ray_rate: float = 0.0) -> Image:
    """Draw a Poisson realization of the model: one synthetic image.

    ``cosmic_ray_rate`` is the per-pixel probability of a cosmic-ray hit;
    hit pixels are corrupted with a large charge deposit and flagged in the
    image mask (as the SDSS frame pipeline flags them).
    """
    if rng is None:
        rng = np.random.default_rng()
    rate = expected_image(entries, meta, shape_hw)
    pixels = rng.poisson(rate).astype(float)
    mask = None
    if cosmic_ray_rate > 0.0:
        mask = rng.random(shape_hw) < cosmic_ray_rate
        n_hits = int(mask.sum())
        if n_hits:
            pixels[mask] += rng.gamma(2.0, 40.0 * meta.sky_level, n_hits)
    return Image(pixels=pixels, meta=meta, mask=mask)
