"""Synthetic sky generation: sampling catalogs and field images from priors.

This substitutes for the real SDSS pixel archive: catalogs are drawn from the
generative model's priors, so the inference code faces data with exactly the
statistical structure the model assumes (plus Poisson noise), and ground
truth is known exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import GALAXY, NUM_BANDS, STAR
from repro.core.catalog import Catalog, CatalogEntry
from repro.core.priors import Priors, default_priors
from repro.psf.gmm import default_psf
from repro.survey.image import Image, ImageMeta
from repro.survey.render import render_image
from repro.survey.wcs import AffineWCS

__all__ = [
    "SyntheticSkyConfig",
    "generate_catalog",
    "generate_field_images",
    "generate_survey_fields",
]


@dataclass
class SyntheticSkyConfig:
    """Knobs for synthetic catalog and image generation.

    Attributes
    ----------
    source_density:
        Expected sources per 100x100-pixel patch of sky.
    min_separation:
        Minimum distance (pixels) enforced between source centers; 0 allows
        arbitrary blending.
    flux_floor:
        Minimum reference-band flux (nanomaggies); the log-normal prior is
        truncated below this so every synthetic source is in principle
        detectable.
    sky_level, calibration:
        Baseline observing conditions; per-field values jitter around these.
    psf_fwhm:
        Baseline PSF FWHM in pixels.
    condition_jitter:
        Fractional lognormal scatter of per-field sky/calibration/seeing.
    """

    source_density: float = 8.0
    min_separation: float = 0.0
    flux_floor: float = 1.0
    sky_level: float = 160.0
    calibration: float = 120.0
    psf_fwhm: float = 3.2
    condition_jitter: float = 0.12
    priors: Priors = field(default_factory=default_priors)


def generate_catalog(
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    config: SyntheticSkyConfig | None = None,
    rng: np.random.Generator | None = None,
) -> Catalog:
    """Sample a ground-truth catalog over a sky box from the priors."""
    if config is None:
        config = SyntheticSkyConfig()
    if rng is None:
        rng = np.random.default_rng()
    priors = config.priors

    area = (x_range[1] - x_range[0]) * (y_range[1] - y_range[0])
    n = rng.poisson(config.source_density * area / 1e4)
    catalog = Catalog()
    positions: list[np.ndarray] = []
    attempts = 0
    while len(catalog) < n and attempts < 50 * max(n, 1):
        attempts += 1
        pos = np.array([
            rng.uniform(*x_range),
            rng.uniform(*y_range),
        ])
        if config.min_separation > 0 and positions:
            d = np.linalg.norm(np.stack(positions) - pos, axis=1)
            if d.min() < config.min_separation:
                continue

        is_gal = rng.random() < priors.prob_galaxy
        ty = GALAXY if is_gal else STAR
        flux = float(np.exp(rng.normal(priors.r_loc[ty], np.sqrt(priors.r_var[ty]))))
        if flux < config.flux_floor:
            flux = config.flux_floor * (1.0 + rng.random())
        comp = rng.choice(len(priors.k_weights), p=priors.k_weights[:, ty])
        colors = rng.normal(
            priors.c_mean[:, comp, ty], np.sqrt(priors.c_var[:, comp, ty])
        )

        entry = CatalogEntry(
            position=pos,
            is_galaxy=bool(is_gal),
            flux_r=flux,
            colors=colors,
            gal_frac_dev=float(rng.beta(1.2, 1.2)),
            gal_axis_ratio=float(rng.uniform(0.25, 0.95)),
            gal_angle=float(rng.uniform(0.0, np.pi)),
            gal_radius_px=float(np.exp(rng.normal(0.6, 0.4))),
        )
        positions.append(pos)
        catalog.append(entry)
    return catalog


def generate_field_images(
    catalog: Catalog,
    origin: tuple[float, float],
    shape_hw: tuple[int, int],
    config: SyntheticSkyConfig | None = None,
    rng: np.random.Generator | None = None,
    field_id: tuple = (1, 1, 1),
    epoch: int = 0,
    bands: tuple = tuple(range(NUM_BANDS)),
) -> list[Image]:
    """Render one field: an image in each requested band sharing a WCS.

    Observing conditions (seeing, sky, calibration) jitter per field and per
    band around the configured baseline, as in real survey data.
    """
    if config is None:
        config = SyntheticSkyConfig()
    if rng is None:
        rng = np.random.default_rng()
    wcs = AffineWCS.translation(origin[0], origin[1])
    jitter = lambda: float(np.exp(rng.normal(0.0, config.condition_jitter)))  # noqa: E731

    images = []
    for band in bands:
        meta = ImageMeta(
            band=band,
            wcs=wcs,
            psf=default_psf(fwhm=config.psf_fwhm * jitter()),
            sky_level=config.sky_level * jitter(),
            calibration=config.calibration * jitter(),
            field_id=field_id,
            epoch=epoch,
        )
        images.append(render_image(catalog, meta, shape_hw, rng=rng))
    return images


def generate_survey_fields(
    n_fields: int,
    field_shape_hw: tuple[int, int] = (48, 48),
    overlap: float = 8.0,
    config: SyntheticSkyConfig | None = None,
    rng: np.random.Generator | None = None,
    edge_margin: float = 6.0,
    bands: tuple = tuple(range(NUM_BANDS)),
) -> tuple[Catalog, list[list[Image]]]:
    """A strip of overlapping fields sharing one ground-truth catalog.

    The multi-field substrate for the end-to-end driver: ``n_fields`` fields
    are laid out along a row (as in an SDSS drift-scan strip), each shifted by
    ``width - overlap`` pixels so adjacent fields share an ``overlap``-pixel
    column of sky.  One global truth catalog is sampled over the union
    footprint (keeping ``edge_margin`` pixels clear of the outer boundary so
    every source is fully observable somewhere), and every field renders the
    sources its footprint covers — sources in overlap columns appear in two
    fields, exercising cross-field deduplication downstream.

    Returns ``(truth, fields)`` where ``fields[f]`` is the list of per-band
    images of field ``f`` (positions in truth are global sky coordinates).
    """
    if n_fields < 1:
        raise ValueError("need at least one field")
    if config is None:
        config = SyntheticSkyConfig()
    if rng is None:
        rng = np.random.default_rng()
    h, w = field_shape_hw
    step = w - overlap
    if step <= 0:
        raise ValueError("overlap must be smaller than the field width")
    x_max = (n_fields - 1) * step + w

    truth = generate_catalog(
        (edge_margin, x_max - edge_margin),
        (edge_margin, h - edge_margin),
        config,
        rng,
    )
    fields = []
    for f in range(n_fields):
        fields.append(generate_field_images(
            truth,
            origin=(f * step, 0.0),
            shape_hw=field_shape_hw,
            config=config,
            rng=rng,
            field_id=(1, 1, f),
            bands=bands,
        ))
    return truth, fields
