"""Dynamic task scheduling.

The paper uses Dtree (Pamnany et al.), "a distributed dynamic scheduler that
balances load for irregular tasks, even at petascale", which organizes
compute nodes into a tree of logarithmic height so each node only talks to
its parent and children (Section IV-B).  :mod:`repro.sched.dtree` implements
that design; :mod:`repro.sched.central` is the centralized work queue it is
compared against (the centralized queue's single lock becomes the bottleneck
at scale — measurable in the scheduler-overhead benchmark).
"""

from repro.sched.dtree import Dtree, DtreeConfig
from repro.sched.central import CentralQueue

__all__ = ["Dtree", "DtreeConfig", "CentralQueue"]
