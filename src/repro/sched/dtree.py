"""Dtree: distributed dynamic scheduling over a tree of nodes.

Following Pamnany et al. (the paper's reference [17]): compute nodes are
organized into a tree whose height scales logarithmically with the node
count; work (a contiguous range of task ids) flows down the tree in batches.
Each node distributes a *static* first allotment to prime its children, then
grants shrinking dynamic batches on request; a node whose pool empties asks
its parent, so every request touches at most O(log N) nodes — the property
that lets the design scale to petascale machines while a centralized queue
serializes on one lock.

The implementation is usable both standalone (threaded, real locks) and
inside the discrete-event cluster simulator, which charges latency per hop
using the recorded statistics.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.knobs import knob

__all__ = ["DtreeConfig", "Dtree"]


@dataclass
class DtreeConfig:
    """Tuning knobs of the scheduler.

    All fields are ``scheduling`` knobs (:func:`repro.knobs.knob`): they
    shape who computes what and when, never what is computed — results are
    completion-order independent, so none enter the checkpoint fingerprint.
    """

    fanout: int = knob(8, provenance="scheduling")
    #: Fraction of all work distributed as the static first allotment.
    initial_fraction: float = knob(0.25, provenance="scheduling")
    #: A node grants a child this fraction of its remaining pool per request.
    drain_fraction: float = knob(0.5, provenance="scheduling")
    min_batch: int = knob(1, provenance="scheduling")


class _Node:
    """One tree node: a pool of task-id ranges plus topology links."""

    __slots__ = ("pool", "parent", "children", "lock", "depth", "n_leaves")

    def __init__(self, parent, depth):
        self.pool: deque = deque()      # of (lo, hi) half-open ranges
        self.parent = parent
        self.children: list["_Node"] = []
        self.lock = threading.Lock()
        self.depth = depth
        self.n_leaves = 1

    def remaining(self) -> int:
        return sum(hi - lo for lo, hi in self.pool)

    def take(self, count: int) -> list[tuple[int, int]]:
        """Pop up to ``count`` task ids off the pool (lock held by caller)."""
        out = []
        while count > 0 and self.pool:
            lo, hi = self.pool[0]
            grab = min(count, hi - lo)
            out.append((lo, lo + grab))
            count -= grab
            if lo + grab == hi:
                self.pool.popleft()
            else:
                self.pool[0] = (lo + grab, hi)
        return out

    def bank(self, ranges: list[tuple[int, int]]) -> None:
        for lo, hi in ranges:
            if hi > lo:
                self.pool.append((lo, hi))


class Dtree:
    """A tree scheduler over ``n_workers`` leaves distributing ``n_tasks``.

    ``request(worker_id)`` returns the next batch of task ids for that
    worker (empty list = no work anywhere: terminate).  ``stats`` counts
    messages and parent-hops, which the cluster simulator converts into
    scheduling-overhead time.
    """

    def __init__(self, n_workers: int, n_tasks: int,
                 config: DtreeConfig | None = None):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        self.config = config or DtreeConfig()
        self.n_workers = n_workers
        self.n_tasks = n_tasks

        # Build the tree: leaves in order, internal nodes with `fanout`.
        self.leaves = [_Node(None, 0) for _ in range(n_workers)]
        level = self.leaves
        depth = 1
        while len(level) > 1:
            parents = []
            for i in range(0, len(level), self.config.fanout):
                parent = _Node(None, depth)
                for child in level[i:i + self.config.fanout]:
                    child.parent = parent
                    parent.children.append(child)
                parent.n_leaves = sum(c.n_leaves for c in parent.children)
                parents.append(parent)
            level = parents
            depth += 1
        self.root = level[0]
        self.height = self.root.depth

        # Static first allotment: a slice of work pre-placed at every leaf.
        static_total = int(n_tasks * self.config.initial_fraction)
        per_leaf = static_total // n_workers
        cursor = 0
        if per_leaf > 0:
            for leaf in self.leaves:
                leaf.bank([(cursor, cursor + per_leaf)])
                cursor += per_leaf
        self.root.bank([(cursor, n_tasks)])

        self._stats_lock = threading.Lock()
        self.messages = 0
        self.hops = 0
        self._version = 0

    # -- scheduling ---------------------------------------------------------------

    def _grant_from(self, node: _Node, want: int) -> list[tuple[int, int]]:
        """Take up to ``want`` tasks from ``node``, refilling recursively
        from its parent when empty."""
        with node.lock:
            got = node.take(want)
        if got:
            return got
        parent = node.parent
        if parent is None:
            return []
        with self._stats_lock:
            self.messages += 1
            self.hops += 1
        # Refill proportionally to the requesting subtree's share of the
        # parent's leaves, damped by the drain fraction — so no subtree can
        # hoard the pool while siblings idle, and batches shrink
        # geometrically as the run drains (Dtree's end-game behavior).
        share = node.n_leaves / max(parent.n_leaves, 1)
        refill_want = max(
            int(parent.remaining() * share * self.config.drain_fraction),
            want,
            self.config.min_batch,
        )
        refill = self._grant_from(parent, refill_want)
        if not refill:
            return []
        # Serve the request out of the refill; bank the surplus locally.
        served: list[tuple[int, int]] = []
        need = want
        bank: list[tuple[int, int]] = []
        for lo, hi in refill:
            if need > 0:
                grab = min(need, hi - lo)
                served.append((lo, lo + grab))
                need -= grab
                if lo + grab < hi:
                    bank.append((lo + grab, hi))
            else:
                bank.append((lo, hi))
        if bank:
            with node.lock:
                node.bank(bank)
        return served

    def request(self, worker_id: int, max_batch: int | None = None) -> list[int]:
        """Next batch of task ids for a worker (empty when all work is done)."""
        if not 0 <= worker_id < self.n_workers:
            raise IndexError("bad worker id")
        want = max_batch if max_batch is not None else self.config.min_batch
        with self._stats_lock:
            self.messages += 1
        ranges = self._grant_from(self.leaves[worker_id], want)
        out: list[int] = []
        for lo, hi in ranges:
            out.extend(range(lo, hi))
        if out:
            # Every pool mutation happens inside some worker's request (or
            # a reclaim), so bumping here is enough for peek invalidation.
            with self._stats_lock:
                self._version += 1
        return out

    def reclaim(self, worker_id: int) -> int:
        """Return a dead worker's undispatched leaf pool to the root.

        Leaves only ever *receive* work (grants refill downward from
        parents), so ranges banked at a dead worker's leaf would otherwise
        strand: no surviving worker's request path visits a sibling leaf.
        Re-banking them at the root makes them reachable from every leaf
        again.  Returns the number of task ids reclaimed; already-granted
        (in-flight) tasks are the caller's to re-dispatch.
        """
        if not 0 <= worker_id < self.n_workers:
            raise IndexError("bad worker id")
        leaf = self.leaves[worker_id]
        with leaf.lock:
            ranges = [(lo, hi) for lo, hi in leaf.pool]
            leaf.pool.clear()
        moved = sum(hi - lo for lo, hi in ranges)
        if moved:
            with self.root.lock:
                self.root.bank(ranges)
            with self._stats_lock:
                self.messages += 1
                self.hops += self.height
                self._version += 1
        return moved

    def peek(self, worker_id: int, n: int) -> list[int]:
        """Up to ``n`` task ids this worker is likely to be granted next,
        without removing anything — the look-ahead hook the driver's field
        prefetcher keys I/O on (the paper's Burst Buffer pipeline).

        Walks the worker's leaf-to-root path, reading each pool in grant
        order.  Best-effort: a sibling may win a peeked task in the
        meantime, which costs a wasted prefetch, never correctness.
        """
        if not 0 <= worker_id < self.n_workers:
            raise IndexError("bad worker id")
        out: list[int] = []
        node = self.leaves[worker_id]
        while node is not None and len(out) < n:
            with node.lock:
                for lo, hi in node.pool:
                    out.extend(range(lo, min(hi, lo + n - len(out))))
                    if len(out) >= n:
                        break
            node = node.parent
        return out

    # -- introspection ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped on every grant and reclaim.  A worker
        that recorded the version when it peeked can tell at dispatch time
        whether the schedule may have shifted under it (work stealing) and
        cheaply re-peek — the staleness check the field prefetcher keys on.
        """
        with self._stats_lock:
            return self._version

    @property
    def stats(self) -> dict:
        return {
            "messages": self.messages,
            "hops": self.hops,
            "height": self.height,
        }
