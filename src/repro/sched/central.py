"""Centralized work queue: the baseline Dtree is measured against.

One shared queue, one lock.  Perfect load balance in principle, but every
request from every worker serializes on the same lock (and, on a real
machine, on the same network endpoint) — the scaling pathology Dtree's tree
topology removes.
"""

from __future__ import annotations

import threading

__all__ = ["CentralQueue"]


class CentralQueue:
    """A single locked cursor over the task range."""

    def __init__(self, n_workers: int, n_tasks: int):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.n_tasks = n_tasks
        self._cursor = 0
        self._lock = threading.Lock()
        self.messages = 0

    def request(self, worker_id: int, max_batch: int | None = None) -> list[int]:
        """Next batch (size 1 by default, as a central queue hands out work
        one task at a time to stay balanced)."""
        if not 0 <= worker_id < self.n_workers:
            raise IndexError("bad worker id")
        want = max_batch if max_batch is not None else 1
        with self._lock:
            self.messages += 1
            lo = self._cursor
            hi = min(lo + want, self.n_tasks)
            self._cursor = hi
        return list(range(lo, hi))

    @property
    def stats(self) -> dict:
        # Every message contends on the single central endpoint: the
        # effective "hops" equal the message count.
        return {"messages": self.messages, "hops": self.messages, "height": 1}
