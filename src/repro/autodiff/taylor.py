"""Sparse-index forward-mode Taylor arithmetic over NumPy arrays.

A :class:`Taylor` represents a function value together with its first (and
optionally second) derivatives with respect to a *subset* of a global
parameter vector.  The subset is recorded as a sorted tuple of global indices;
binary operations embed both operands into the union of their index sets.

Derivative layout, for an index set of size ``p`` and a value of shape ``S``:

- ``val``  has shape ``S``
- ``grad`` has shape ``(p, *S)``
- ``hess`` has shape ``(p, p, *S)`` and is kept symmetric

Two kinds of sparsity are exploited, mirroring Celeste's hand-coded
derivative blocks:

1. **Index sparsity** — a sub-expression touching only position parameters
   carries 2x2 Hessian blocks, not 41x41.
2. **Zero-Hessian sparsity** — affine expressions (seeded variables, pixel
   offsets, linear transforms) carry ``hess is None`` even in second-order
   mode (flag ``o2``), so dense zero blocks are never allocated or
   propagated.  Curvature only materializes where nonlinearity does.

Constants are represented with ``grad is None``; gradient-only values (used
by the L-BFGS baseline) have ``o2 = False``.  Mixing a gradient-only operand
with a second-order operand degrades the result to gradient-only, mirroring
the paper's observation that computing the Hessian alongside the gradient
costs roughly 3x a gradient-only pass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Taylor",
    "constant",
    "expand_dims",
    "lift",
    "seed",
    "texp",
    "tlog",
    "tlog1p",
    "tsqrt",
    "tsquare",
    "tsin",
    "tcos",
    "tsum",
]


def _align(block: np.ndarray, lead: int, value_ndim: int, out_ndim: int) -> np.ndarray:
    """Insert singleton axes after the leading derivative axes so that a
    derivative block with value rank ``value_ndim`` broadcasts against a
    value of rank ``out_ndim``."""
    if value_ndim == out_ndim:
        return block
    shape = block.shape[:lead] + (1,) * (out_ndim - value_ndim) + block.shape[lead:]
    return block.reshape(shape)


def _outer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Outer product over the leading derivative axis:
    ``(p, *S) x (p, *S) -> (p, p, *S)``."""
    return a[:, None] * b[None, :]


class Taylor:
    """A value with sparse first- and second-order derivative blocks."""

    __slots__ = ("val", "idx", "grad", "hess", "o2")
    __array_priority__ = 100.0  # so ndarray + Taylor dispatches to us

    def __init__(self, val, idx=(), grad=None, hess=None, o2=None):
        self.val = np.asarray(val, dtype=np.float64)
        self.idx = tuple(idx)
        self.grad = grad
        self.hess = hess
        if o2 is None:
            o2 = hess is not None or grad is None
        self.o2 = o2

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def constant(val) -> "Taylor":
        return Taylor(val)

    @staticmethod
    def variable(val: float, index: int, order: int = 2) -> "Taylor":
        """A scalar variable seeded with unit gradient at a global index.

        Its Hessian is exactly zero, so no block is allocated even at
        ``order=2``."""
        v = np.asarray(val, dtype=np.float64)
        if v.shape != ():
            raise ValueError("variables must be scalars; got shape %r" % (v.shape,))
        return Taylor(v, (index,), np.ones((1,)), None, o2=(order >= 2))

    # -- introspection ----------------------------------------------------------

    @property
    def shape(self):
        return self.val.shape

    @property
    def is_constant(self) -> bool:
        return self.grad is None

    @property
    def order(self) -> int:
        if self.grad is None:
            return 0
        return 2 if self.o2 else 1

    def __repr__(self):
        return "Taylor(val=%r, idx=%r, order=%d)" % (self.val, self.idx, self.order)

    # -- dense extraction -------------------------------------------------------

    def gradient(self, n_params: int) -> np.ndarray:
        """Scatter the sparse gradient block into a dense ``(n_params, *S)``."""
        out = np.zeros((n_params,) + self.val.shape)
        if self.grad is not None:
            out[list(self.idx)] = np.broadcast_to(
                self.grad, (len(self.idx),) + self.val.shape
            )
        return out

    def hessian(self, n_params: int) -> np.ndarray:
        """Scatter the sparse Hessian block into a dense ``(n_params,
        n_params, *S)`` (zeros when the Hessian is exactly zero)."""
        out = np.zeros((n_params, n_params) + self.val.shape)
        if self.hess is not None:
            ii = np.asarray(self.idx)
            p = len(self.idx)
            out[np.ix_(ii, ii)] = np.broadcast_to(
                self.hess, (p, p) + self.val.shape
            )
        return out

    # -- alignment helpers --------------------------------------------------------

    def _embed_grad(self, union: tuple, out_ndim: int):
        """Gradient block embedded into ``union`` indices and broadcast-ready
        against a value of rank ``out_ndim`` (None for constants)."""
        if self.grad is None:
            return None
        vnd = self.val.ndim
        if self.idx == union:
            return _align(self.grad, 1, vnd, out_ndim)
        pu = len(union)
        pos = [union.index(i) for i in self.idx]
        g = np.zeros((pu,) + self.val.shape)
        g[pos] = self.grad
        return _align(g, 1, vnd, out_ndim)

    def _hess_block(self, out_ndim: int):
        """Own Hessian block aligned to rank ``out_ndim`` (None when zero)."""
        if self.hess is None:
            return None
        return _align(self.hess, 2, self.val.ndim, out_ndim)

    def _positions(self, union: tuple):
        return None if self.idx == union else [union.index(i) for i in self.idx]

    # -- arithmetic -----------------------------------------------------------------

    def __add__(self, other):
        other = lift(other)
        val = self.val + other.val
        if self.grad is None and other.grad is None:
            return Taylor(val)
        union = _union(self.idx, other.idx)
        o2 = self._result_o2(other)
        ga = self._embed_grad(union, val.ndim)
        gb = other._embed_grad(union, val.ndim)
        grad = _nadd(ga, gb, (len(union),) + val.shape)
        hess = None
        if o2:
            ha = self._hess_block(val.ndim)
            hb = other._hess_block(val.ndim)
            pa = self._positions(union)
            pb = other._positions(union)
            if ha is not None and hb is not None:
                if pa is None and pb is None:
                    hess = ha + hb
                else:
                    hess = np.zeros((len(union), len(union)) + val.shape)
                    _scatter_add(hess, pa, ha)
                    _scatter_add(hess, pb, hb)
            elif ha is not None:
                hess = ha if pa is None else _scattered(
                    (len(union), len(union)) + val.shape, pa, ha
                )
            elif hb is not None:
                hess = hb if pb is None else _scattered(
                    (len(union), len(union)) + val.shape, pb, hb
                )
        return Taylor(val, union, grad, hess, o2=o2)

    def __radd__(self, other):
        return self.__add__(other)

    def __neg__(self):
        grad = None if self.grad is None else -self.grad
        hess = None if self.hess is None else -self.hess
        return Taylor(-self.val, self.idx, grad, hess, o2=self.o2)

    def __sub__(self, other):
        return self.__add__(-lift(other))

    def __rsub__(self, other):
        return (-self).__add__(other)

    def _result_o2(self, other: "Taylor") -> bool:
        oa = self.o2 or self.grad is None
        ob = other.o2 or other.grad is None
        return oa and ob

    def __mul__(self, other):
        other = lift(other)
        val = self.val * other.val
        if self.grad is None and other.grad is None:
            return Taylor(val)
        # Fast paths: constant * variable avoids index-union work entirely.
        if other.grad is None:
            return self._scale_by_const(other.val, val)
        if self.grad is None:
            return other._scale_by_const(self.val, val)
        union = _union(self.idx, other.idx)
        o2 = self._result_o2(other)
        ga = self._embed_grad(union, val.ndim)
        gb = other._embed_grad(union, val.ndim)
        av = self.val
        bv = other.val
        grad = ga * bv + gb * av
        hess = None
        if o2:
            # The symmetrized cross term has the full union shape; operand
            # Hessian blocks are accumulated in place at their positions, so
            # no zero-padded embeds are ever allocated.
            cross = _outer(ga, gb)
            hess = cross + np.swapaxes(cross, 0, 1)
            if hess.shape[2:] != val.shape:
                hess = np.broadcast_to(
                    hess, hess.shape[:2] + val.shape
                ).copy()
            ha = self._hess_block(val.ndim)
            if ha is not None:
                _scatter_add(hess, self._positions(union), ha * bv)
            hb = other._hess_block(val.ndim)
            if hb is not None:
                _scatter_add(hess, other._positions(union), hb * av)
        return Taylor(val, union, grad, hess, o2=o2)

    def __rmul__(self, other):
        return self.__mul__(other)

    def _scale_by_const(self, c: np.ndarray, val: np.ndarray) -> "Taylor":
        c = np.asarray(c, dtype=np.float64)
        g = _align(self.grad, 1, self.val.ndim, val.ndim) * c
        h = None
        if self.hess is not None:
            h = _align(self.hess, 2, self.val.ndim, val.ndim) * c
        return Taylor(val, self.idx, g, h, o2=self.o2)

    def reciprocal(self) -> "Taylor":
        inv = 1.0 / self.val
        return _unary(self, inv, -inv * inv, lambda: 2.0 * inv * inv * inv)

    def __truediv__(self, other):
        other = lift(other)
        if other.grad is None:
            return self * (1.0 / other.val)
        return self * other.reciprocal()

    def __rtruediv__(self, other):
        return lift(other).__truediv__(self)

    def __pow__(self, n):
        if not np.isscalar(n):
            raise TypeError("Taylor.__pow__ supports scalar exponents only")
        if n == 2:
            return tsquare(self)
        v = self.val
        return _unary(self, v ** n, n * v ** (n - 1),
                      lambda: n * (n - 1) * v ** (n - 2))

    # -- reductions / reshaping ---------------------------------------------------

    def sum(self, axis=None) -> "Taylor":
        return tsum(self, axis=axis)

    def __getitem__(self, key) -> "Taylor":
        val = self.val[key]
        grad = None if self.grad is None else self.grad[(slice(None),) + _askey(key)]
        hess = None if self.hess is None else self.hess[(slice(None), slice(None)) + _askey(key)]
        return Taylor(val, self.idx, grad, hess, o2=self.o2)

    # -- comparisons on values (useful for assertions; no derivative meaning) -----

    def __float__(self):
        return float(self.val)


def _askey(key):
    return key if isinstance(key, tuple) else (key,)


def _union(a: tuple, b: tuple) -> tuple:
    if a == b:
        return a
    if not a:
        return b
    if not b:
        return a
    return tuple(sorted(set(a) | set(b)))


def _nadd(a, b, shape):
    if a is None and b is None:
        return None
    if a is None:
        return np.broadcast_to(b, shape).copy() if b.shape != shape else b
    if b is None:
        return np.broadcast_to(a, shape).copy() if a.shape != shape else a
    return a + b


def _scatter_add(target: np.ndarray, positions, block: np.ndarray) -> None:
    """In-place add of a derivative block at (optional) scattered positions."""
    if positions is None:
        target += block
    else:
        target[np.ix_(positions, positions)] += block


def _scattered(shape, positions, block: np.ndarray) -> np.ndarray:
    out = np.zeros(shape)
    out[np.ix_(positions, positions)] = block
    return out


def _unary(t: Taylor, val: np.ndarray, d1: np.ndarray, d2_fn) -> "Taylor":
    """Apply the chain rule for a scalar function with derivative ``d1`` and
    second derivative ``d2_fn()`` (lazily computed only at order 2)."""
    if t.grad is None:
        return Taylor(val)
    grad = d1 * t.grad
    hess = None
    if t.o2:
        hess = d2_fn() * _outer(t.grad, t.grad)
        if t.hess is not None:
            hess = hess + d1 * t.hess
    return Taylor(val, t.idx, grad, hess, o2=t.o2)


# -- free functions -------------------------------------------------------------


def constant(val) -> Taylor:
    """Wrap an array or scalar as a derivative-free :class:`Taylor`."""
    return Taylor(val)


def lift(x) -> Taylor:
    """Coerce scalars/arrays to constants; pass Taylor values through."""
    return x if isinstance(x, Taylor) else Taylor(x)


def seed(values, indices=None, order: int = 2) -> list[Taylor]:
    """Seed a list of scalar variables from a flat parameter vector.

    ``indices`` defaults to ``0..len(values)-1``; pass explicit global
    indices to seed a parameter block inside a larger vector.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if indices is None:
        indices = range(len(values))
    return [Taylor.variable(v, i, order=order) for v, i in zip(values, indices)]


def texp(t) -> Taylor:
    t = lift(t)
    e = np.exp(t.val)
    return _unary(t, e, e, lambda: e)


def tlog(t) -> Taylor:
    t = lift(t)
    inv = 1.0 / t.val
    return _unary(t, np.log(t.val), inv, lambda: -inv * inv)


def tlog1p(t) -> Taylor:
    t = lift(t)
    inv = 1.0 / (1.0 + t.val)
    return _unary(t, np.log1p(t.val), inv, lambda: -inv * inv)


def tsqrt(t) -> Taylor:
    t = lift(t)
    s = np.sqrt(t.val)
    inv = 0.5 / s
    return _unary(t, s, inv, lambda: -0.5 * inv / t.val)


def tsquare(t) -> Taylor:
    t = lift(t)
    return _unary(t, t.val * t.val, 2.0 * t.val, lambda: np.asarray(2.0))


def tsin(t) -> Taylor:
    t = lift(t)
    s, c = np.sin(t.val), np.cos(t.val)
    return _unary(t, s, c, lambda: -s)


def tcos(t) -> Taylor:
    t = lift(t)
    s, c = np.sin(t.val), np.cos(t.val)
    return _unary(t, c, -s, lambda: -c)


def expand_dims(t, axis: int) -> Taylor:
    """Insert a new value axis (components can then be batched into the value
    shape and reduced with :func:`tsum`, instead of looping in Python)."""
    t = lift(t)
    if axis < 0:
        axis += t.val.ndim + 1
    val = np.expand_dims(t.val, axis)
    grad = None if t.grad is None else np.expand_dims(t.grad, axis + 1)
    hess = None if t.hess is None else np.expand_dims(t.hess, axis + 2)
    return Taylor(val, t.idx, grad, hess, o2=t.o2)


def tsum(t, axis=None) -> Taylor:
    """Sum over value axes (all axes by default), keeping derivative axes."""
    t = lift(t)
    val = t.val.sum(axis=axis)
    if t.grad is None:
        return Taylor(val)
    if axis is None:
        gaxes = tuple(range(1, t.grad.ndim))
        haxes = tuple(range(2, 2 + t.val.ndim))
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % t.val.ndim for a in axes)
        gaxes = tuple(a + 1 for a in axes)
        haxes = tuple(a + 2 for a in axes)
    grad = t.grad.sum(axis=gaxes) if gaxes else t.grad
    hess = None
    if t.hess is not None:
        hess = t.hess.sum(axis=haxes) if haxes else t.hess
    return Taylor(val, t.idx, grad, hess, o2=t.o2)
