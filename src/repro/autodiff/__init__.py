"""Vectorized forward-mode automatic differentiation with sparse indices.

Celeste computes exact gradients and Hessians of its variational objective,
using custom index types so that each sub-expression only carries derivatives
with respect to the parameters it actually touches (paper, Section V).  This
package reproduces that design in NumPy:

- :class:`~repro.autodiff.taylor.Taylor` carries a value array, a gradient
  block over a *sparse set of global parameter indices*, and (optionally) an
  exact dense Hessian block over the same indices.
- Binary operations take the union of the two operands' index sets, so a
  galaxy-profile density that depends only on position and shape parameters
  never pays for derivatives with respect to flux or color parameters.
- All arithmetic is vectorized over the value axes, so a single expression
  evaluates the objective (and all derivatives) for every active pixel at
  once — NumPy vectorization playing the role of Celeste's AVX-512 kernels.
"""

from repro.autodiff.taylor import (
    Taylor,
    constant,
    expand_dims,
    lift,
    seed,
    texp,
    tlog,
    tlog1p,
    tsqrt,
    tsquare,
    tsin,
    tcos,
    tsum,
)
from repro.autodiff.check import (
    finite_difference_gradient,
    finite_difference_hessian,
    check_gradient,
    check_hessian,
)

__all__ = [
    "Taylor",
    "constant",
    "expand_dims",
    "lift",
    "seed",
    "texp",
    "tlog",
    "tlog1p",
    "tsqrt",
    "tsquare",
    "tsin",
    "tcos",
    "tsum",
    "finite_difference_gradient",
    "finite_difference_hessian",
    "check_gradient",
    "check_hessian",
]
