"""Finite-difference verification of Taylor-mode derivatives.

Every derivative used by the inference engine is validated against central
finite differences in the test suite; these helpers implement the comparison.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.taylor import Taylor, seed

__all__ = [
    "finite_difference_gradient",
    "finite_difference_hessian",
    "check_gradient",
    "check_hessian",
]


def finite_difference_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of a flat vector."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    for i in range(x.size):
        hi = x.copy()
        lo = x.copy()
        hi[i] += eps
        lo[i] -= eps
        g[i] = (f(hi) - f(lo)) / (2.0 * eps)
    return g


def finite_difference_hessian(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-4
) -> np.ndarray:
    """Central-difference Hessian of a scalar function of a flat vector."""
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    h = np.zeros((n, n))
    f0 = f(x)
    for i in range(n):
        for j in range(i, n):
            pp = x.copy(); pp[i] += eps; pp[j] += eps
            pm = x.copy(); pm[i] += eps; pm[j] -= eps
            mp = x.copy(); mp[i] -= eps; mp[j] += eps
            mm = x.copy(); mm[i] -= eps; mm[j] -= eps
            h[i, j] = (f(pp) - f(pm) - f(mp) + f(mm)) / (4.0 * eps * eps)
            h[j, i] = h[i, j]
    _ = f0
    return h


def _evaluate(fn: Callable[[Sequence[Taylor]], Taylor], x: np.ndarray, order: int) -> Taylor:
    out = fn(seed(x, order=order))
    if not isinstance(out, Taylor):
        raise TypeError("function under test must return a Taylor scalar")
    if out.val.shape != ():
        raise ValueError("function under test must return a scalar")
    return out


def check_gradient(
    fn: Callable[[Sequence[Taylor]], Taylor],
    x: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
    eps: float = 1e-6,
) -> None:
    """Assert that ``fn``'s Taylor gradient matches finite differences.

    ``fn`` maps a list of seeded Taylor variables to a Taylor scalar.
    """
    x = np.asarray(x, dtype=np.float64)
    out = _evaluate(fn, x, order=1)
    ad = out.gradient(x.size)

    def plain(v: np.ndarray) -> float:
        return float(fn(seed(v, order=1)).val)

    fd = finite_difference_gradient(plain, x, eps=eps)
    np.testing.assert_allclose(ad, fd, rtol=rtol, atol=atol)


def check_hessian(
    fn: Callable[[Sequence[Taylor]], Taylor],
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    eps: float = 1e-4,
) -> None:
    """Assert that ``fn``'s Taylor Hessian matches finite differences and is
    symmetric."""
    x = np.asarray(x, dtype=np.float64)
    out = _evaluate(fn, x, order=2)
    ad = out.hessian(x.size)
    np.testing.assert_allclose(ad, np.swapaxes(ad, 0, 1), rtol=1e-9, atol=1e-9)

    def plain(v: np.ndarray) -> float:
        return float(fn(seed(v, order=1)).val)

    fd = finite_difference_hessian(plain, x, eps=eps)
    np.testing.assert_allclose(ad, fd, rtol=rtol, atol=atol)
