"""Physical and accounting constants shared across the Celeste reproduction.

The FLOP-accounting constants come directly from the paper (Section VI-B):
each *active pixel visit* — one evaluation of a single source's contribution
to one pixel's Poisson rate, together with its gradient and Hessian —
performs 32,317 double-precision FLOPs, as measured by the authors with the
Intel Software Development Emulator.  FLOPs outside the objective function
(trust-region eigendecompositions, Cholesky factorizations, ...) scale the
total by a further 1.375x.
"""

from __future__ import annotations

# --- SDSS photometric bands -------------------------------------------------
#: Band names in SDSS order (ultraviolet through near infrared).
BANDS: tuple[str, ...] = ("u", "g", "r", "i", "z")
#: Number of photometric bands.
NUM_BANDS: int = len(BANDS)
#: Index of the reference band (r) whose brightness is modeled directly.
REFERENCE_BAND: int = 2
#: Number of colors (log flux ratios between adjacent bands).
NUM_COLORS: int = NUM_BANDS - 1

# --- Source types ------------------------------------------------------------
#: Index of the "star" hypothesis in type-indexed arrays.
STAR: int = 0
#: Index of the "galaxy" hypothesis in type-indexed arrays.
GALAXY: int = 1
#: Number of source types (star, galaxy).
NUM_TYPES: int = 2

#: Number of components in the Gaussian-mixture color prior (Celeste used 8;
#: with 2 types this contributes the k[8,2] block of the 44-parameter layout).
NUM_COLOR_COMPONENTS: int = 8

# --- FLOP accounting (paper Section VI-B) ------------------------------------
#: Double-precision FLOPs performed per active pixel visit (SDE-measured).
FLOPS_PER_ACTIVE_PIXEL_VISIT: int = 32_317
#: Multiplier accounting for FLOPs outside the objective function.
FLOP_OVERHEAD_FACTOR: float = 1.375

# --- Machine model defaults (Cori Phase II, paper Section VI-A) ---------------
#: Cores per Cori Phase II node (Intel Xeon Phi 7250).
CORES_PER_NODE: int = 68
#: Processes per node in the empirically best configuration (Section VII-B).
PROCESSES_PER_NODE: int = 17
#: Threads per process in the empirically best configuration (Section VII-B).
THREADS_PER_PROCESS: int = 8
#: Burst Buffer aggregate peak bandwidth, bytes/second (1.7 TB/s).
BURST_BUFFER_BANDWIDTH: float = 1.7e12
#: Lustre aggregate bandwidth, bytes/second (700 GB/s).
LUSTRE_BANDWIDTH: float = 7.0e11
#: Size of one SDSS field file in bytes (the paper's "12 MB image files").
FIELD_FILE_BYTES: int = 12 * 1024 * 1024

# --- Parameter-vector layout sizes -------------------------------------------
#: Constrained parameters per source: a[2] + u[2] + r1[2] + r2[2] + c1[4,2]
#: + c2[4,2] + e_dev + e_axis + e_angle + e_scale + k[8,2] = 44 (paper, §IV).
NUM_CANONICAL_PARAMS: int = 44
