"""Physical and accounting constants shared across the Celeste reproduction.

The FLOP-accounting constants come directly from the paper (Section VI-B):
each *active pixel visit* — one evaluation of a single source's contribution
to one pixel's Poisson rate, together with its gradient and Hessian —
performs 32,317 double-precision FLOPs, as measured by the authors with the
Intel Software Development Emulator.  FLOPs outside the objective function
(trust-region eigendecompositions, Cholesky factorizations, ...) scale the
total by a further 1.375x.
"""

from __future__ import annotations

# --- SDSS photometric bands -------------------------------------------------
#: Band names in SDSS order (ultraviolet through near infrared).
BANDS: tuple[str, ...] = ("u", "g", "r", "i", "z")
#: Number of photometric bands.
NUM_BANDS: int = len(BANDS)
#: Index of the reference band (r) whose brightness is modeled directly.
REFERENCE_BAND: int = 2
#: Number of colors (log flux ratios between adjacent bands).
NUM_COLORS: int = NUM_BANDS - 1

# --- Source types ------------------------------------------------------------
#: Index of the "star" hypothesis in type-indexed arrays.
STAR: int = 0
#: Index of the "galaxy" hypothesis in type-indexed arrays.
GALAXY: int = 1
#: Number of source types (star, galaxy).
NUM_TYPES: int = 2

#: Number of components in the Gaussian-mixture color prior (Celeste used 8;
#: with 2 types this contributes the k[8,2] block of the 44-parameter layout).
NUM_COLOR_COMPONENTS: int = 8

# --- FLOP accounting (paper Section VI-B) ------------------------------------
#: Double-precision FLOPs performed per active pixel visit (SDE-measured).
FLOPS_PER_ACTIVE_PIXEL_VISIT: int = 32_317
#: Multiplier accounting for FLOPs outside the objective function.
FLOP_OVERHEAD_FACTOR: float = 1.375

# --- Machine model defaults (Cori Phase II, paper Section VI-A) ---------------
#: Cores per Cori Phase II node (Intel Xeon Phi 7250).
CORES_PER_NODE: int = 68
#: Processes per node in the empirically best configuration (Section VII-B).
PROCESSES_PER_NODE: int = 17
#: Threads per process in the empirically best configuration (Section VII-B).
THREADS_PER_PROCESS: int = 8
#: Burst Buffer aggregate peak bandwidth, bytes/second (1.7 TB/s).
BURST_BUFFER_BANDWIDTH: float = 1.7e12
#: Lustre aggregate bandwidth, bytes/second (700 GB/s).
LUSTRE_BANDWIDTH: float = 7.0e11
#: Size of one SDSS field file in bytes (the paper's "12 MB image files").
FIELD_FILE_BYTES: int = 12 * 1024 * 1024

# --- Parameter-vector layout sizes -------------------------------------------
#: Constrained parameters per source: a[2] + u[2] + r1[2] + r2[2] + c1[4,2]
#: + c2[4,2] + e_dev + e_axis + e_angle + e_scale + k[8,2] = 44 (paper, §IV).
NUM_CANONICAL_PARAMS: int = 44

# --- Numerical guard tolerances ----------------------------------------------
# Every guard epsilon used on a numeric path lives here under a name that
# says what it protects; the NUM202 lint rule rejects bare power-of-ten
# literals in clamps and threshold comparisons anywhere else, so a guard
# cannot silently drift out of sync between the scalar and batched paths.

#: Floor applied to per-pixel background rates before they enter the Poisson
#: pixel term (a zero background makes ``log f`` unbounded at dark pixels).
BACKGROUND_RATE_FLOOR: float = 1e-3
#: Clip distance from {0, 1} used when inverting unit-interval bijectors
#: (LogitBox, fixed-last softmax); keeps the inverse logits finite.
UNIT_INTERVAL_EDGE: float = 1e-6
#: Trust-region radius below which a Newton solve is declared collapsed.
TRUST_REGION_MIN_RADIUS: float = 1e-10
#: Largest magnitude fed to ``exp`` on guarded paths: ``exp(709.0)`` is the
#: last power that fits in a float64, so clamping an exponent at ±709 turns
#: overflow-to-inf into a saturated-but-finite value (and is bitwise inert
#: for every argument that was already in range).
EXP_ARG_LIMIT: float = 709.0
#: Floor for catalog fluxes entering a log during seeding (Photo detections
#: are positive; the floor only matters for degenerate synthetic inputs).
SEED_FLUX_FLOOR: float = 1e-6
#: Floor for fluxes entering the color-prior GMM fit's log-ratio features.
COLOR_FIT_FLUX_FLOOR: float = 1e-9
#: Floor applied to fluxes before forming colors ``log(f[b+1]/f[b])``;
#: bitwise inert for any physically plausible positive flux.
FLUX_RATIO_FLOOR: float = 1e-12
#: Variance floor when seeding the color-prior GMM fit (degenerate catalogs
#: would otherwise initialize a component's Gaussian as a delta).
COLOR_FIT_VAR_FLOOR: float = 1e-3
#: Variance floor inside the GMM M-step (tighter than the init floor: EM may
#: legitimately shrink a well-populated component below it).
COLOR_FIT_EM_VAR_FLOOR: float = 1e-4
#: Floor on per-component responsibility mass in the GMM E-step (an empty
#: component would divide by zero in the M-step).
GMM_RESPONSIBILITY_FLOOR: float = 1e-9
#: Gradient components below this are "numerically orthogonal" to the bottom
#: eigenspace in the trust-region hard case (More-Sorensen safeguard).
HARD_CASE_GRAD_TOL: float = 1e-12
#: Step norms below this are treated as exactly degenerate when solving the
#: trust-region secular equation (denormal floor, not a tuning knob).
DEGENERATE_STEP_NORM: float = 1e-300
#: Floor on second-moment eigenvalues when recovering an ellipse from
#: measured moments (a flat source would otherwise yield axis ratio 0/0).
MOMENT_EIGENVALUE_FLOOR: float = 1e-12
#: Floor on the total type-probability mass when renormalizing ``a`` out of
#: a canonical vector (the two entries sum to ~1 on any sane vector).
TYPE_MASS_FLOOR: float = 1e-12
#: Clip distance from {0, 1} for probabilities entering an entropy
#: ``p log p`` (tighter than UNIT_INTERVAL_EDGE: entropy is reported, not
#: inverted, so the edge only needs to keep the log finite).
TYPE_PROB_EDGE: float = 1e-12
#: Floor on the radius argument of the de Vaucouleurs profile (the r^{1/4}
#: cusp has infinite slope at exactly zero).
PROFILE_RADIUS_FLOOR: float = 1e-12
#: Floor on warm-start NNLS amplitudes for the profile mixture fit (zero
#: amplitudes would start the log-parameterized refinement at -inf).
NNLS_AMPLITUDE_FLOOR: float = 1e-6
#: Floor on per-cluster responsibility mass in the PSF EM M-step (an empty
#: cluster would divide by zero updating its mean and covariance).
EM_CLUSTER_MASS_FLOOR: float = 1e-12
