"""Per-thread runtime breakdown reports (paper Section VII-A).

The paper profiles each thread's runtime into categories (Julia-generated
code 67%, native dependencies 18%, system math library 10%, MKL 3%, libc +
kernel 2%) and reports the fraction of FLOPs issued on vector registers.
Our analogue: time spent in vectorized NumPy kernels vs. Python-level
orchestration vs. I/O, measured with real timers around the corresponding
code regions.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["RuntimeBreakdown", "thread_runtime_breakdown"]


@dataclass
class RuntimeBreakdown:
    """Accumulated seconds per category for one worker thread."""

    seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def region(self, name: str):
        """Time a code region under a category name."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, secs: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + secs

    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Category fractions of total time (the paper's percentages)."""
        total = self.total()
        if total <= 0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: "RuntimeBreakdown") -> None:
        for k, v in other.seconds.items():
            self.add(k, v)


def thread_runtime_breakdown(breakdowns: list[RuntimeBreakdown]) -> RuntimeBreakdown:
    """Aggregate per-thread breakdowns into one report."""
    out = RuntimeBreakdown()
    for b in breakdowns:
        out.merge(b)
    return out
