"""Driver-level performance accounting.

The paper reports end-to-end numbers for the full three-level run — sustained
FLOP rate, load balance, and scheduling overhead — not just per-kernel rates.
:class:`DriverReport` is the analogue for :mod:`repro.driver`: it aggregates
the node-workers' task-processing and scheduler-wait time, the Dtree message
statistics, and the :class:`~repro.perf.counters.Counters`-based FLOP count
into one summary with the driver's headline throughput (sources optimized per
second of wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.flops import flops_from_visits

__all__ = ["DriverReport"]


@dataclass
class DriverReport:
    """End-to-end statistics of one driver run.

    Attributes
    ----------
    wall_seconds:
        Wall-clock time of the optimization stages (excludes synthesis).
    task_seconds:
        Task-processing time summed across node-workers (> wall when the
        workers overlap, which is the point).
    sched_seconds:
        Time node-workers spent inside ``Dtree.request`` summed across
        workers — the driver's scheduling overhead.
    n_fields, n_tasks, n_source_updates:
        Work volume: fields processed, tasks executed, and single-source
        block updates performed (a source optimized in both stages counts
        twice — it is two units of work).
    messages, hops:
        Dtree traffic totals across all stages.
    active_pixel_visits:
        The paper's FLOP-accounting unit, from the driver's counter bag.
    stage_elbo:
        Final ELBO total per optimization stage, ``{"stage0": ..., ...}``.
    worker_comm:
        Per-node-worker communication record: one dict per worker with its
        one-sided catalog traffic (``rma_gets``/``rma_puts``/``rma_bytes``,
        and ``rma_remote`` ops that crossed a shard boundary) — the numbers
        the paper reports as PGAS get/put volume.
    prefetch_hits, prefetch_misses, prefetch_seconds:
        Field-file prefetcher outcome totals across workers: hits are loads
        the Burst-Buffer-style look-ahead hid, misses are synchronous
        stalls, seconds is background-thread load time (overlapped).
    race_reports:
        Findings of the shadow-transport race detector
        (:mod:`repro.analysis.race`) as serialized dicts — populated only
        when the run enabled ``race_detect``, and empty on a correct
        schedule even then.  Any entry here is a real determinism bug.
    numeric_reports:
        Findings of the runtime float sanitizer
        (:mod:`repro.analysis.numeric`) as serialized dicts — populated
        only when the run enabled ``numeric_check``, and empty on a
        numerically healthy model even then.  Each entry pinpoints
        (kind, stage, term, source, lane, actor) of one float pathology.
    recoveries:
        Fault-recovery events of the run, one dict per event:
        ``{"kind": "worker_death", "stage": ..., "worker": ...,
        "retried": [...]}`` when a dead node-worker's in-flight tasks were
        re-dispatched to survivors, and ``{"kind": "task_replay",
        "stage": ..., "n_tasks": ...}`` when a resumed run replayed
        journaled tasks from a task-granular checkpoint instead of
        re-executing them.  Empty on an undisturbed run.
    """

    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    sched_seconds: float = 0.0
    n_fields: int = 0
    n_tasks: int = 0
    n_source_updates: int = 0
    messages: int = 0
    hops: int = 0
    active_pixel_visits: float = 0.0
    stage_elbo: dict[str, float] = field(default_factory=dict)
    worker_comm: list = field(default_factory=list)
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_seconds: float = 0.0
    race_reports: list = field(default_factory=list)
    numeric_reports: list = field(default_factory=list)
    recoveries: list = field(default_factory=list)

    @property
    def sources_per_second(self) -> float:
        """Headline throughput: source updates per second of wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_source_updates / self.wall_seconds

    @property
    def scheduling_overhead_fraction(self) -> float:
        """Fraction of worker time spent waiting on the scheduler."""
        busy = self.task_seconds + self.sched_seconds
        return self.sched_seconds / busy if busy > 0 else 0.0

    @property
    def total_flops(self) -> float:
        return flops_from_visits(self.active_pixel_visits)

    @property
    def flop_rate(self) -> float:
        """Sustained FLOP/s over the driver's wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_flops / self.wall_seconds

    @property
    def messages_per_task(self) -> float:
        return self.messages / self.n_tasks if self.n_tasks else 0.0

    @property
    def rma_gets(self) -> int:
        return sum(w.get("rma_gets", 0) for w in self.worker_comm)

    @property
    def rma_puts(self) -> int:
        return sum(w.get("rma_puts", 0) for w in self.worker_comm)

    @property
    def rma_bytes(self) -> int:
        return sum(w.get("rma_bytes", 0) for w in self.worker_comm)

    def add_worker_comm(self, worker: int, rma_gets: int, rma_puts: int,
                        rma_bytes: int, rma_remote: int) -> None:
        """Accumulate one worker's one-sided traffic (summed across stages)."""
        for rec in self.worker_comm:
            if rec.get("worker") == worker:
                rec["rma_gets"] += rma_gets
                rec["rma_puts"] += rma_puts
                rec["rma_bytes"] += rma_bytes
                rec["rma_remote"] += rma_remote
                return
        self.worker_comm.append({
            "worker": worker,
            "rma_gets": rma_gets,
            "rma_puts": rma_puts,
            "rma_bytes": rma_bytes,
            "rma_remote": rma_remote,
        })

    def as_dict(self) -> dict:
        """JSON-serializable form (stored in driver checkpoints)."""
        return {
            "wall_seconds": self.wall_seconds,
            "task_seconds": self.task_seconds,
            "sched_seconds": self.sched_seconds,
            "n_fields": self.n_fields,
            "n_tasks": self.n_tasks,
            "n_source_updates": self.n_source_updates,
            "messages": self.messages,
            "hops": self.hops,
            "active_pixel_visits": self.active_pixel_visits,
            "stage_elbo": dict(self.stage_elbo),
            "worker_comm": [dict(w) for w in self.worker_comm],
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
            "prefetch_seconds": self.prefetch_seconds,
            "race_reports": [dict(r) for r in self.race_reports],
            "numeric_reports": [dict(r) for r in self.numeric_reports],
            "recoveries": [dict(r) for r in self.recoveries],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DriverReport":
        out = cls()
        for k, v in d.items():
            if k == "stage_elbo":
                v = dict(v)
            elif k in ("worker_comm", "race_reports", "numeric_reports",
                       "recoveries"):
                v = [dict(w) for w in v]
            setattr(out, k, v)
        return out

    def summary_lines(self) -> list[str]:
        """Human-readable report, one line per statistic."""
        lines = [
            "fields processed      %8d" % self.n_fields,
            "tasks executed        %8d" % self.n_tasks,
            "source updates        %8d" % self.n_source_updates,
            "wall time             %10.2f s" % self.wall_seconds,
            "throughput            %10.2f sources/s" % self.sources_per_second,
            "active pixel visits   %10.3g" % self.active_pixel_visits,
            "model GFLOPs          %10.2f" % (self.total_flops / 1e9),
            "sustained GFLOP/s     %10.3f" % (self.flop_rate / 1e9),
            "sched overhead        %9.1f%% of worker time"
            % (100.0 * self.scheduling_overhead_fraction),
            "dtree messages        %8d (%.2f per task)"
            % (self.messages, self.messages_per_task),
            "dtree parent hops     %8d" % self.hops,
        ]
        if self.worker_comm:
            lines.append(
                "catalog RMA           %8d gets / %d puts (%.1f KB)"
                % (self.rma_gets, self.rma_puts, self.rma_bytes / 1024.0)
            )
            for rec in sorted(self.worker_comm, key=lambda r: r["worker"]):
                lines.append(
                    "  worker %-4d         %8d gets / %d puts, %d remote"
                    % (rec["worker"], rec["rma_gets"], rec["rma_puts"],
                       rec["rma_remote"])
                )
        if self.prefetch_hits or self.prefetch_misses:
            lines.append(
                "field prefetch        %8d hits / %d misses (%.2f s hidden)"
                % (self.prefetch_hits, self.prefetch_misses,
                   self.prefetch_seconds)
            )
        for stage, elbo in sorted(self.stage_elbo.items()):
            lines.append("ELBO after %-10s %12.1f" % (stage, elbo))
        if self.race_reports:
            lines.append("RACES DETECTED        %8d" % len(self.race_reports))
            for r in self.race_reports:
                lines.append(
                    "  %s on %s epoch %s: %s vs %s over %s"
                    % (r.get("kind"), r.get("window"), r.get("epoch"),
                       r.get("actor_a"), r.get("actor_b"), r.get("extent"))
                )
        if self.recoveries:
            lines.append("recoveries            %8d" % len(self.recoveries))
            for r in self.recoveries:
                if r.get("kind") == "worker_death":
                    lines.append(
                        "  worker %s died in %s; retried tasks %s"
                        % (r.get("worker"), r.get("stage"),
                           r.get("retried"))
                    )
                else:
                    lines.append(
                        "  %s in %s: %s tasks"
                        % (r.get("kind"), r.get("stage"), r.get("n_tasks"))
                    )
        if self.numeric_reports:
            lines.append("NUMERIC FINDINGS      %8d"
                         % len(self.numeric_reports))
            for r in self.numeric_reports:
                lines.append(
                    "  %s in %s/%s source=%s lane=%s actor=%s: %s"
                    % (r.get("kind"), r.get("stage"), r.get("term"),
                       r.get("source"), r.get("lane"), r.get("actor"),
                       r.get("detail"))
                )
        return lines
