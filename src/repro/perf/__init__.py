"""Performance measurement: counters, FLOP accounting, and reports.

Reproduces the paper's measurement methodology (Section VI-B): FLOPs are
derived from *active pixel visits* — each visit performs 32,317 DP FLOPs (an
SDE-measured constant), and work outside the objective function scales the
total by 1.375x.
"""

from repro.perf.counters import (
    Counters,
    GLOBAL_COUNTERS,
    batch_occupancy,
    counting,
)
from repro.perf.flops import flops_from_visits, flop_rate, FlopReport
from repro.perf.report import thread_runtime_breakdown, RuntimeBreakdown
from repro.perf.driver import DriverReport

__all__ = [
    "batch_occupancy",
    "Counters",
    "GLOBAL_COUNTERS",
    "counting",
    "flops_from_visits",
    "flop_rate",
    "FlopReport",
    "thread_runtime_breakdown",
    "RuntimeBreakdown",
    "DriverReport",
]
