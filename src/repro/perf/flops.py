"""FLOP accounting from active pixel visits (paper Section VI-B).

The paper determines total FLOPs by counting active pixel visits and
multiplying by the SDE-measured 32,317 FLOPs/visit, then by 1.375 to account
for work outside the objective function (trust-region eigendecompositions,
Cholesky factorizations, ...).  Table I reports the resulting sustained
TFLOP/s under three accounting scopes that include progressively more wall
time: task processing only, plus load imbalance, plus image loading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FLOP_OVERHEAD_FACTOR, FLOPS_PER_ACTIVE_PIXEL_VISIT

__all__ = ["flops_from_visits", "flop_rate", "visit_rate", "FlopReport"]


def flops_from_visits(active_pixel_visits: float) -> float:
    """Total DP FLOPs implied by a count of active pixel visits.

    A *visit* is one evaluation of one source's contribution to one active
    pixel together with its derivatives.  The objective front end counts
    visits identically whichever ELBO backend evaluated them (Taylor or
    fused — see :mod:`repro.core.elbo`), so FLOP totals and rates stay
    comparable across backends: a faster backend shows up as a higher
    sustained rate over the *same* visit count, exactly how the paper
    accounts its hand-optimized kernels.  The KL terms of the objective are
    pixel-count-independent and contribute **zero** visits under every
    backend — whether evaluated as a Taylor expression or by the fused
    closed-form KL kernel — so fusing them (ISSUE 4) changes rates, never
    visit counts.
    """
    return active_pixel_visits * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR


def flop_rate(active_pixel_visits: float, seconds: float) -> float:
    """Sustained FLOP/s over a wall-clock interval."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops_from_visits(active_pixel_visits) / seconds


def visit_rate(active_pixel_visits: float, seconds: float) -> float:
    """Active-pixel visits per second — the backend-neutral throughput unit
    benchmarks record (``BENCH_elbo_backend.json``)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return active_pixel_visits / seconds


@dataclass(frozen=True)
class FlopReport:
    """Sustained FLOP rates under the paper's three accounting scopes.

    Each scope divides the same total FLOPs by a progressively larger share
    of the wall clock, mirroring Table I.
    """

    active_pixel_visits: float
    task_processing_seconds: float
    load_imbalance_seconds: float
    image_loading_seconds: float

    @property
    def total_flops(self) -> float:
        return flops_from_visits(self.active_pixel_visits)

    @property
    def rate_task_processing(self) -> float:
        """FLOP/s over task-processing time only (Table I column 1)."""
        return self.total_flops / self.task_processing_seconds

    @property
    def rate_with_imbalance(self) -> float:
        """FLOP/s including load-imbalance time (Table I column 2)."""
        return self.total_flops / (
            self.task_processing_seconds + self.load_imbalance_seconds
        )

    @property
    def rate_with_io(self) -> float:
        """FLOP/s including image-loading time too (Table I column 3)."""
        return self.total_flops / (
            self.task_processing_seconds
            + self.load_imbalance_seconds
            + self.image_loading_seconds
        )

    def as_table(self) -> dict[str, float]:
        """Table I rows, in TFLOP/s."""
        return {
            "task processing": self.rate_task_processing / 1e12,
            "+load imbalance": self.rate_with_imbalance / 1e12,
            "+image loading": self.rate_with_io / 1e12,
        }
