"""Instrumentation counters.

A tiny registry of named counters incremented by the inference code:
``active_pixel_visits`` (the paper's FLOP-accounting unit), Newton
iterations, objective evaluations (plus per-backend tallies and
``kl_evaluations`` for KL-only calls, all counted by the backend-neutral
front end so totals are identical whichever ELBO backend ran), RMA get/put
operations, and bytes loaded.  Thread-safe, since Cyclades runs source
updates concurrently.

**Batch occupancy.**  The batched objective front end
(:func:`repro.core.elbo.elbo_batch`) counts ``elbo_batch_calls``,
``elbo_batch_lanes`` (lanes swept, active or not), and
``elbo_batch_lanes_active``.  A lockstep solve keeps converged sources'
lanes in its compiled stacks until it repacks, so swept-but-inactive lanes
are real wasted pixel work; :func:`batch_occupancy` turns the counters
into the fraction of swept lanes that were live — 1.0 means no waste,
and a low value means the repack threshold is letting dead lanes ride
too long.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager

__all__ = ["Counters", "GLOBAL_COUNTERS", "batch_occupancy", "counting"]


def batch_occupancy(snapshot: dict) -> float:
    """Fraction of swept evaluation-batch lanes that were active, from a
    counter snapshot; 1.0 when no batched evaluations ran (no waste)."""
    lanes = snapshot.get("elbo_batch_lanes", 0.0)
    if lanes <= 0.0:
        return 1.0
    return snapshot.get("elbo_batch_lanes_active", 0.0) / lanes


class Counters:
    """A concurrent bag of named integer counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._values: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._values[name] += amount

    def add_many(self, amounts: dict) -> None:
        """Increment several counters under one lock acquisition.

        The objective front end counts ``active_pixel_visits`` (the paper's
        FLOP unit) and the evaluation tallies on every call, whichever ELBO
        backend ran — batching them keeps the hot path to a single lock
        round-trip and guarantees the counts can never be torn across
        backends by a concurrent snapshot.
        """
        with self._lock:
            for name, amount in amounts.items():
                self._values[name] += amount

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._values)

    def reset(self, name: str | None = None) -> None:
        with self._lock:
            if name is None:
                self._values.clear()
            else:
                self._values.pop(name, None)

    def __repr__(self):
        return "Counters(%r)" % (self.snapshot(),)


#: Process-wide counters used by the inference engine by default.
GLOBAL_COUNTERS = Counters()


@contextmanager
def counting(counters: Counters | None = None):
    """Context manager yielding a fresh counter bag and merging it into the
    global registry on exit (so nested scopes can be measured separately)."""
    local = counters if counters is not None else Counters()
    try:
        yield local
    finally:
        if local is not GLOBAL_COUNTERS:
            for name, value in local.snapshot().items():
                GLOBAL_COUNTERS.add(name, value)
