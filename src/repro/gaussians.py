"""Bivariate Gaussian utilities shared by the PSF, galaxy-profile, and ELBO code.

Both plain-NumPy evaluation (used for rendering synthetic images and by the
Photo baseline) and Taylor-mode evaluation (used inside the variational
objective, where pixel offsets and covariance entries carry derivatives) are
provided.  Covariances are handled as explicit ``(sxx, sxy, syy)`` triples so
the 2x2 inverse/determinant algebra stays closed-form — this is what lets the
Hessian of a galaxy-profile density stay a 6x6 block (position + shape) no
matter how many parameters the full source has.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Taylor, lift, texp, tsqrt
from repro.constants import MOMENT_EIGENVALUE_FLOOR

TWO_PI = 2.0 * np.pi

__all__ = [
    "gauss2d",
    "gauss2d_taylor",
    "covariance_det",
    "rotation_covariance",
    "rotation_covariance_taylor",
    "moments_to_ellipse",
]


def gauss2d(dx, dy, sxx: float, sxy: float, syy: float) -> np.ndarray:
    """Density of N(0, [[sxx, sxy], [sxy, syy]]) at offsets ``(dx, dy)``."""
    det = sxx * syy - sxy * sxy
    if det <= 0:
        raise ValueError("covariance must be positive definite (det=%g)" % det)
    ixx = syy / det
    ixy = -sxy / det
    iyy = sxx / det
    q = ixx * dx * dx + 2.0 * ixy * dx * dy + iyy * dy * dy
    return np.exp(-0.5 * q) / (TWO_PI * np.sqrt(det))


def gauss2d_taylor(dx, dy, sxx, sxy, syy) -> Taylor:
    """Taylor-mode bivariate normal density.

    ``dx``/``dy`` may be Taylor (position is a variational parameter) and the
    covariance entries may be Taylor (galaxy shape parameters).  Constants are
    lifted automatically.

    The normalizer is folded into the exponent (``exp(-q/2 - log(2 pi
    sqrt(det)))``) so the expensive wide-Hessian multiply of density by
    normalizer never materializes — the log-normalizer is added where
    arrays are still component-sized.
    """
    from repro.autodiff import tlog

    dx, dy = lift(dx), lift(dy)
    sxx, sxy, syy = lift(sxx), lift(sxy), lift(syy)
    det = sxx * syy - sxy * sxy
    inv_det = det.reciprocal() if not det.is_constant else lift(1.0 / det.val)
    ixx = syy * inv_det
    ixy = -1.0 * (sxy * inv_det)
    iyy = sxx * inv_det
    q = ixx * (dx * dx) + 2.0 * (ixy * (dx * dy)) + iyy * (dy * dy)
    if det.is_constant:
        log_norm = lift(np.log(TWO_PI) + 0.5 * np.log(det.val))
    else:
        log_norm = np.log(TWO_PI) + 0.5 * tlog(det)
    return texp(-0.5 * q - log_norm)


def covariance_det(sxx, sxy, syy):
    return sxx * syy - sxy * sxy


def rotation_covariance(axis_ratio: float, angle: float, scale: float):
    """Covariance triple of an elliptical Gaussian with unit-variance major
    axis scaled by ``scale``, minor/major axis ratio ``axis_ratio`` and
    position angle ``angle`` (radians, measured from the +x axis).

    Returns ``(sxx, sxy, syy)`` of ``R(angle) @ diag(scale^2, (scale*axis)^2) @ R^T``.
    """
    c, s = np.cos(angle), np.sin(angle)
    major = scale * scale
    minor = (scale * axis_ratio) ** 2
    sxx = c * c * major + s * s * minor
    syy = s * s * major + c * c * minor
    sxy = c * s * (major - minor)
    return sxx, sxy, syy


def rotation_covariance_taylor(axis_ratio, angle, scale):
    """Taylor version of :func:`rotation_covariance` (shape parameters carry
    derivatives)."""
    from repro.autodiff import tcos, tsin, tsquare

    axis_ratio, angle, scale = lift(axis_ratio), lift(angle), lift(scale)
    c, s = tcos(angle), tsin(angle)
    major = tsquare(scale)
    minor = tsquare(scale * axis_ratio)
    sxx = tsquare(c) * major + tsquare(s) * minor
    syy = tsquare(s) * major + tsquare(c) * minor
    sxy = (c * s) * (major - minor)
    return sxx, sxy, syy


def moments_to_ellipse(mxx: float, mxy: float, myy: float):
    """Invert :func:`rotation_covariance`: recover ``(axis_ratio, angle,
    scale)`` from second moments.  Used by the Photo shape pipeline."""
    m = np.array([[mxx, mxy], [mxy, myy]])
    evals, evecs = np.linalg.eigh(m)
    evals = np.maximum(evals, MOMENT_EIGENVALUE_FLOOR)
    minor2, major2 = evals[0], evals[1]
    scale = np.sqrt(major2)
    axis_ratio = float(np.sqrt(minor2 / major2))
    v = evecs[:, 1]
    angle = float(np.arctan2(v[1], v[0])) % np.pi
    return axis_ratio, angle, scale
