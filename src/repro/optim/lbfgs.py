"""Limited-memory BFGS with backtracking line search.

The baseline the paper compares against (Section IV-D): "while L-BFGS is a
robust and widely used optimization method, it struggles with the objective
function for our problem, taking up to 2000 iterations to converge."  We
implement the standard two-loop recursion (Nocedal & Wright Algorithm 7.4)
with an Armijo backtracking line search and gradient-only objective calls —
each roughly 3x cheaper than a Hessian evaluation, which is exactly the
trade the paper quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.optim.result import OptimResult

__all__ = ["lbfgs_minimize"]


def lbfgs_minimize(
    fg: Callable[[np.ndarray], tuple[float, np.ndarray]],
    x0: np.ndarray,
    grad_tol: float = 1e-6,
    max_iter: int = 2000,
    memory: int = 10,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_line_search: int = 40,
) -> OptimResult:
    """Minimize with gradient-only information.

    Parameters
    ----------
    fg:
        Callable returning ``(value, gradient)``.
    max_iter:
        Defaults to 2000 — the paper's observed worst case for this method.
    """
    x = np.asarray(x0, dtype=float).copy()
    f, g = fg(x)
    n_eval = 1
    s_hist: deque = deque(maxlen=memory)
    y_hist: deque = deque(maxlen=memory)

    for it in range(max_iter):
        gnorm = float(np.linalg.norm(g, ord=np.inf))
        if gnorm < grad_tol:
            return OptimResult(x, f, g, it, n_eval, True, "gradient tolerance met")

        # Two-loop recursion for the search direction.
        q = g.copy()
        alphas = []
        for s, y in reversed(list(zip(s_hist, y_hist))):
            rho = 1.0 / (y @ s)
            a = rho * (s @ q)
            alphas.append((a, rho, s, y))
            q -= a * y
        if y_hist:
            s, y = s_hist[-1], y_hist[-1]
            gamma = (s @ y) / (y @ y)
            q *= gamma
        for a, rho, s, y in reversed(alphas):
            beta = rho * (y @ q)
            q += (a - beta) * s
        direction = -q
        if direction @ g >= 0:  # not a descent direction; reset
            direction = -g
            s_hist.clear()
            y_hist.clear()

        # Armijo backtracking.
        step = 1.0
        descent = direction @ g
        accepted = False
        for _ in range(max_line_search):
            x_new = x + step * direction
            f_new, g_new = fg(x_new)
            n_eval += 1
            if np.isfinite(f_new) and f_new <= f + armijo_c * step * descent:
                accepted = True
                break
            step *= backtrack
        if not accepted:
            return OptimResult(x, f, g, it, n_eval, False, "line search failed")

        s_vec = x_new - x
        y_vec = g_new - g
        if s_vec @ y_vec > 1e-12 * np.linalg.norm(s_vec) * np.linalg.norm(y_vec):
            s_hist.append(s_vec)
            y_hist.append(y_vec)
        x, f, g = x_new, f_new, g_new

    return OptimResult(x, f, g, max_iter, n_eval, False, "iteration limit")
