"""Limited-memory BFGS with backtracking line search.

The baseline the paper compares against (Section IV-D): "while L-BFGS is a
robust and widely used optimization method, it struggles with the objective
function for our problem, taking up to 2000 iterations to converge."  We
implement the standard two-loop recursion (Nocedal & Wright Algorithm 7.4)
with an Armijo backtracking line search and gradient-only objective calls —
each roughly 3x cheaper than a Hessian evaluation, which is exactly the
trade the paper quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.optim.result import OptimResult

__all__ = ["lbfgs_minimize", "lbfgs_minimize_batch"]


def lbfgs_minimize(
    fg: Callable[[np.ndarray], tuple[float, np.ndarray]],
    x0: np.ndarray,
    grad_tol: float = 1e-6,
    max_iter: int = 2000,
    memory: int = 10,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_line_search: int = 40,
) -> OptimResult:
    """Minimize with gradient-only information.

    Parameters
    ----------
    fg:
        Callable returning ``(value, gradient)``.
    max_iter:
        Defaults to 2000 — the paper's observed worst case for this method.
    """
    x = np.asarray(x0, dtype=float).copy()
    f, g = fg(x)
    n_eval = 1
    s_hist: deque = deque(maxlen=memory)
    y_hist: deque = deque(maxlen=memory)

    for it in range(max_iter):
        gnorm = float(np.linalg.norm(g, ord=np.inf))
        if gnorm < grad_tol:
            return OptimResult(x, f, g, it, n_eval, True, "gradient tolerance met")

        # Two-loop recursion for the search direction.
        q = g.copy()
        alphas = []
        for s, y in reversed(list(zip(s_hist, y_hist))):
            rho = 1.0 / (y @ s)
            a = rho * (s @ q)
            alphas.append((a, rho, s, y))
            q -= a * y
        if y_hist:
            s, y = s_hist[-1], y_hist[-1]
            gamma = (s @ y) / (y @ y)
            q *= gamma
        for a, rho, s, y in reversed(alphas):
            beta = rho * (y @ q)
            q += (a - beta) * s
        direction = -q
        if direction @ g >= 0:  # not a descent direction; reset
            direction = -g
            s_hist.clear()
            y_hist.clear()

        # Armijo backtracking.
        step = 1.0
        descent = direction @ g
        accepted = False
        for _ in range(max_line_search):
            x_new = x + step * direction
            f_new, g_new = fg(x_new)
            n_eval += 1
            if np.isfinite(f_new) and f_new <= f + armijo_c * step * descent:
                accepted = True
                break
            step *= backtrack
        if not accepted:
            return OptimResult(x, f, g, it, n_eval, False, "line search failed")

        s_vec = x_new - x
        y_vec = g_new - g
        if s_vec @ y_vec > 1e-12 * np.linalg.norm(s_vec) * np.linalg.norm(y_vec):
            s_hist.append(s_vec)
            y_hist.append(y_vec)
        x, f, g = x_new, f_new, g_new

    return OptimResult(x, f, g, max_iter, n_eval, False, "iteration limit")


class _LbfgsLane:
    """One lane's solver state in the lockstep batch driver: the scalar
    loop's locals, parked between objective evaluations."""

    __slots__ = ("x", "f", "g", "it", "n_eval", "s_hist", "y_hist",
                 "direction", "descent", "step", "ls_left", "trial",
                 "result")

    def __init__(self, x0, memory):
        self.x = np.asarray(x0, dtype=float).copy()
        self.f = None
        self.g = None
        self.it = 0
        self.n_eval = 0
        self.s_hist: deque = deque(maxlen=memory)
        self.y_hist: deque = deque(maxlen=memory)
        self.direction = None
        self.descent = 0.0
        self.step = 1.0
        self.ls_left = 0
        #: The point awaiting evaluation this round (None once finished).
        self.trial = self.x
        self.result: OptimResult | None = None


def lbfgs_minimize_batch(
    fg_batch: Callable[[list, list], list],
    x0s: list,
    grad_tol: float = 1e-6,
    max_iter: int = 2000,
    memory: int = 10,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_line_search: int = 40,
) -> list[OptimResult]:
    """Run many independent L-BFGS solves with lockstep batched evaluations.

    The gradient-only counterpart of
    :func:`repro.optim.lockstep.newton_trust_region_batch`: each lane keeps
    its own iterate, curvature history, and line-search state, but every
    round's objective evaluations — one pending trial point per unfinished
    lane — are served by a single ``fg_batch(indices, xs)`` call returning
    ``(value, gradient)`` pairs in lane order.

    **Bit-for-bit contract.**  Each lane's result is *identical* to
    :func:`lbfgs_minimize` on that lane alone (same iterates, same
    ``n_evaluations``, same termination message): the per-lane state
    machine below replays the scalar loop's arithmetic exactly, merely
    parking a lane while its next evaluation is in flight.  Lanes desync
    naturally (a lane backtracking its line search evaluates at a different
    cadence than one accepting every unit step); the driver only ever
    synchronizes *rounds*, never solver decisions.
    """
    lanes = [_LbfgsLane(x0, memory) for x0 in x0s]

    def begin_iteration(ln: _LbfgsLane) -> None:
        """Termination checks + search direction; parks the lane at its
        first line-search trial (or finishes it)."""
        if ln.it >= max_iter:
            ln.result = OptimResult(ln.x, ln.f, ln.g, max_iter, ln.n_eval,
                                    False, "iteration limit")
            ln.trial = None
            return
        gnorm = float(np.linalg.norm(ln.g, ord=np.inf))
        if gnorm < grad_tol:
            ln.result = OptimResult(ln.x, ln.f, ln.g, ln.it, ln.n_eval,
                                    True, "gradient tolerance met")
            ln.trial = None
            return

        q = ln.g.copy()
        alphas = []
        for s, y in reversed(list(zip(ln.s_hist, ln.y_hist))):
            rho = 1.0 / (y @ s)
            a = rho * (s @ q)
            alphas.append((a, rho, s, y))
            q -= a * y
        if ln.y_hist:
            s, y = ln.s_hist[-1], ln.y_hist[-1]
            gamma = (s @ y) / (y @ y)
            q *= gamma
        for a, rho, s, y in reversed(alphas):
            beta = rho * (y @ q)
            q += (a - beta) * s
        direction = -q
        if direction @ ln.g >= 0:  # not a descent direction; reset
            direction = -ln.g
            ln.s_hist.clear()
            ln.y_hist.clear()

        ln.direction = direction
        ln.descent = direction @ ln.g
        ln.step = 1.0
        ln.ls_left = max_line_search
        if ln.ls_left <= 0:
            ln.result = OptimResult(ln.x, ln.f, ln.g, ln.it, ln.n_eval,
                                    False, "line search failed")
            ln.trial = None
            return
        ln.trial = ln.x + ln.step * ln.direction

    def on_result(ln: _LbfgsLane, f_new: float, g_new: np.ndarray) -> None:
        ln.n_eval += 1
        if ln.f is None:  # the initial f(x0) evaluation
            ln.f, ln.g = f_new, g_new
            begin_iteration(ln)
            return
        if np.isfinite(f_new) \
                and f_new <= ln.f + armijo_c * ln.step * ln.descent:
            x_new = ln.trial
            s_vec = x_new - ln.x
            y_vec = g_new - ln.g
            if s_vec @ y_vec > 1e-12 * np.linalg.norm(s_vec) \
                    * np.linalg.norm(y_vec):
                ln.s_hist.append(s_vec)
                ln.y_hist.append(y_vec)
            ln.x, ln.f, ln.g = x_new, f_new, g_new
            ln.it += 1
            begin_iteration(ln)
            return
        ln.ls_left -= 1
        if ln.ls_left <= 0:
            ln.result = OptimResult(ln.x, ln.f, ln.g, ln.it, ln.n_eval,
                                    False, "line search failed")
            ln.trial = None
            return
        ln.step *= backtrack
        ln.trial = ln.x + ln.step * ln.direction

    pending = [i for i, ln in enumerate(lanes) if ln.result is None]
    while pending:
        outs = fg_batch(pending, [lanes[i].trial for i in pending])
        for i, (f_new, g_new) in zip(pending, outs):
            on_result(lanes[i], f_new, g_new)
        pending = [i for i in pending if lanes[i].result is None]
    return [ln.result for ln in lanes]
