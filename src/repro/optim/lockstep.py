"""Lockstep Newton trust-region iterations over a batch of problems.

The paper's AVX-512 kernel evaluates the objective for many light sources
at once; to feed it, the *optimizer* must ask for many evaluations at once.
This module advances ``B`` independent Newton trust-region solves in
lockstep: each round, every still-active problem runs its (cheap,
per-problem) trust-region bookkeeping until it either terminates or needs
an objective evaluation, and all requested evaluations are then served by
one batched callback.

**Exactness contract.**  Each problem's iterate sequence is *identical* to
what :func:`repro.optim.newton.newton_trust_region` would produce alone —
same iterates, same accept/shrink decisions, same iteration and evaluation
counts, same convergence message.  The state machine below is a faithful
transcription of that function's loop (including the no-evaluation
``continue`` branches that shrink the radius on a failed subproblem), and
the batched callback is required to return bit-for-bit the values a scalar
evaluation would (the ELBO backends guarantee this; see
:meth:`repro.core.elbo.ElboBackend.evaluate_batch`).  Lockstep batching is
therefore an execution strategy, not a different algorithm: catalogs
optimized batched and scalar are bit-for-bit identical.

Problems do not interact — a batch is just a set of solves that happen to
share evaluation sweeps — so convergence of one never perturbs another;
it only shrinks the next round's evaluation batch (the caller sees the
shrinking active set through the callback's index argument and may repack
its compiled evaluation state whenever occupancy drops).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.numeric import current_check
from repro.constants import TRUST_REGION_MIN_RADIUS
from repro.optim.result import OptimResult
from repro.optim.trust_region import solve_trust_region

__all__ = ["newton_trust_region_batch"]


class _LaneState:
    """One problem's Newton trust-region state between lockstep rounds."""

    __slots__ = ("index", "x", "f", "g", "h", "radius", "it", "n_eval",
                 "step", "predicted", "x_try", "result")

    def __init__(self, index: int, x0: np.ndarray, initial_radius: float):
        self.index = index
        self.x = np.asarray(x0, dtype=float).copy()
        self.f = None
        self.g = None
        self.h = None
        self.radius = float(initial_radius)
        self.it = 0
        self.n_eval = 0
        self.step = None
        self.predicted = None
        self.x_try = None
        self.result: OptimResult | None = None

    def finish(self, converged: bool, message: str) -> None:
        self.result = OptimResult(self.x, self.f, self.g, self.it,
                                  self.n_eval, converged, message)


def newton_trust_region_batch(
    fgh_batch: Callable[[list[int], list[np.ndarray]], list[tuple]],
    x0s: list[np.ndarray],
    grad_tol: float = 1e-6,
    max_iter: int = 60,
    initial_radius: float = 1.0,
    max_radius: float = 16.0,
    min_radius: float = TRUST_REGION_MIN_RADIUS,
    eta_accept: float = 0.1,
    eta_expand: float = 0.75,
) -> list[OptimResult]:
    """Minimize ``len(x0s)`` independent problems with lockstep Newton.

    Parameters
    ----------
    fgh_batch:
        Callable ``fgh_batch(indices, xs) -> [(value, gradient, hessian),
        ...]`` evaluating problem ``indices[k]`` at ``xs[k]`` for every k,
        in one batched sweep.  ``indices`` is the ascending list of
        still-active problems, so implementations can repack per-batch
        state as lanes drop out.
    x0s:
        One starting point per problem.

    Every other knob matches :func:`~repro.optim.newton.newton_trust_region`
    and applies to each problem independently.  Returns one
    :class:`OptimResult` per problem, each identical to the scalar solver's.
    """
    lanes = [_LaneState(i, x0, initial_radius) for i, x0 in enumerate(x0s)]
    if not lanes:
        return []

    def advance(s: _LaneState) -> bool:
        """Run one lane's no-evaluation bookkeeping; True when the lane
        needs an objective evaluation at ``s.x_try``."""
        while True:
            if s.it >= max_iter:
                s.finish(False, "iteration limit")
                return False
            gnorm = float(np.linalg.norm(s.g, ord=np.inf))
            if gnorm < grad_tol:
                s.finish(True, "gradient tolerance met")
                return False
            if s.radius < min_radius:
                s.finish(False, "trust region collapsed")
                return False
            step, predicted = solve_trust_region(s.g, s.h, s.radius)
            if predicted <= 0.0 or not np.all(np.isfinite(step)):
                s.radius *= 0.25
                s.it += 1
                continue
            s.step = step
            s.predicted = predicted
            s.x_try = s.x + step
            return True

    # Round zero: every problem evaluates its starting point.
    idx = list(range(len(lanes)))
    for s, out in zip(lanes, fgh_batch(idx, [s.x for s in lanes])):
        s.f, s.g, s.h = out
        s.n_eval = 1

    while True:
        pending = [s for s in lanes if s.result is None and advance(s)]
        if not pending:
            break
        outs = fgh_batch([s.index for s in pending],
                         [s.x_try for s in pending])
        chk = current_check()
        for s, (f_new, g_new, h_new) in zip(pending, outs):
            s.n_eval += 1
            if chk is not None:
                chk.check_step(s.step, f_new, lane=s.index)
                chk.check_reduction(s.f, f_new, s.predicted, lane=s.index)
            if not np.isfinite(f_new):
                s.radius *= 0.25
            else:
                rho = (s.f - f_new) / s.predicted
                if rho >= eta_accept:
                    s.x, s.f, s.g, s.h = s.x_try, f_new, g_new, h_new
                    if (rho >= eta_expand
                            and np.linalg.norm(s.step) >= 0.9 * s.radius):
                        s.radius = min(s.radius * 2.0, max_radius)
                else:
                    s.radius *= 0.25
            s.it += 1

    return [s.result for s in lanes]
