"""Numerical optimization substrate.

The paper optimizes each source's parameters "to machine tolerance by
Newton's method, with step sizes controlled by a trust region" (Section
IV-D), using exact Hessians; each trust-region iteration performs an
eigendecomposition and several Cholesky factorizations (Section VI-B).
The L-BFGS baseline is included because the paper quantifies Newton's
advantage against it (tens of iterations vs. up to 2000).
"""

from repro.optim.trust_region import solve_trust_region
from repro.optim.newton import newton_trust_region
from repro.optim.lockstep import newton_trust_region_batch
from repro.optim.lbfgs import lbfgs_minimize, lbfgs_minimize_batch
from repro.optim.result import OptimResult

__all__ = [
    "solve_trust_region",
    "newton_trust_region",
    "newton_trust_region_batch",
    "lbfgs_minimize",
    "lbfgs_minimize_batch",
    "OptimResult",
]
