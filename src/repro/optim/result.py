"""Shared optimization result container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OptimResult"]


@dataclass
class OptimResult:
    """Outcome of a numerical minimization.

    Attributes
    ----------
    x:
        Final iterate.
    fun:
        Final objective value.
    grad:
        Final gradient.
    n_iterations:
        Outer iterations performed.
    n_evaluations:
        Objective evaluations (includes rejected trust-region steps and line
        search probes).
    converged:
        Whether the gradient tolerance was met.
    message:
        Human-readable status.
    """

    x: np.ndarray
    fun: float
    grad: np.ndarray
    n_iterations: int
    n_evaluations: int
    converged: bool
    message: str = ""

    @property
    def grad_norm(self) -> float:
        return float(np.linalg.norm(self.grad, ord=np.inf))
