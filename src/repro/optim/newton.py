"""Newton's method with a trust region, for nonconvex minimization.

The driver used for every light source (paper Section IV-D): exact Hessians
from the AD engine, step control by :func:`solve_trust_region`, standard
accept/expand/shrink logic on the predicted-vs-actual decrease ratio
(Nocedal & Wright Algorithm 4.1).  Converges in tens of iterations on the
ELBO where first-order methods need hundreds to thousands.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.numeric import current_check
from repro.constants import TRUST_REGION_MIN_RADIUS
from repro.optim.result import OptimResult
from repro.optim.trust_region import solve_trust_region

__all__ = ["newton_trust_region"]


def newton_trust_region(
    fgh: Callable[[np.ndarray], tuple[float, np.ndarray, np.ndarray]],
    x0: np.ndarray,
    grad_tol: float = 1e-6,
    max_iter: int = 60,
    initial_radius: float = 1.0,
    max_radius: float = 16.0,
    min_radius: float = TRUST_REGION_MIN_RADIUS,
    eta_accept: float = 0.1,
    eta_expand: float = 0.75,
) -> OptimResult:
    """Minimize a smooth nonconvex function with exact second order info.

    Parameters
    ----------
    fgh:
        Callable returning ``(value, gradient, hessian)`` at a point.
    grad_tol:
        Convergence threshold on the infinity norm of the gradient.
    """
    x = np.asarray(x0, dtype=float).copy()
    f, g, h = fgh(x)
    n_eval = 1
    radius = float(initial_radius)

    for it in range(max_iter):
        gnorm = float(np.linalg.norm(g, ord=np.inf))
        if gnorm < grad_tol:
            return OptimResult(x, f, g, it, n_eval, True, "gradient tolerance met")
        if radius < min_radius:
            return OptimResult(x, f, g, it, n_eval, False, "trust region collapsed")

        step, predicted = solve_trust_region(g, h, radius)
        if predicted <= 0.0 or not np.all(np.isfinite(step)):
            radius *= 0.25
            continue

        x_new = x + step
        f_new, g_new, h_new = fgh(x_new)
        n_eval += 1
        chk = current_check()
        if chk is not None:
            chk.check_step(step, f_new)
            chk.check_reduction(f, f_new, predicted)
        if not np.isfinite(f_new):
            radius *= 0.25
            continue

        rho = (f - f_new) / predicted
        if rho >= eta_accept:
            x, f, g, h = x_new, f_new, g_new, h_new
            if rho >= eta_expand and np.linalg.norm(step) >= 0.9 * radius:
                radius = min(radius * 2.0, max_radius)
        else:
            radius *= 0.25

    return OptimResult(x, f, g, max_iter, n_eval, False, "iteration limit")
