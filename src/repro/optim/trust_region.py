"""The trust-region subproblem, solved via eigendecomposition.

Minimize the local quadratic model ``g.p + p.H.p / 2`` subject to
``|p| <= radius``, where ``H`` may be indefinite (the ELBO is nonconvex).
Following the classic Moré–Sorensen analysis (Nocedal & Wright §4.3, the
reference the paper cites), the minimizer is ``p(nu) = -(H + nu I)^{-1} g``
for the unique ``nu >= max(0, -lambda_min)`` making ``|p(nu)| = radius``
(or ``nu = 0`` when the Newton step is interior).  We work in the eigenbasis
of ``H`` — the paper notes an eigendecomposition per iteration — which makes
the 1-D secular equation in ``nu`` trivially solvable by bisection/Newton,
including the hard case.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEGENERATE_STEP_NORM, HARD_CASE_GRAD_TOL

__all__ = ["solve_trust_region"]


def solve_trust_region(
    grad: np.ndarray,
    hess: np.ndarray,
    radius: float,
    tol: float = 1e-10,
    max_iter: int = 120,
) -> tuple[np.ndarray, float]:
    """Solve the trust-region subproblem.

    Returns ``(step, predicted_decrease)`` with ``predicted_decrease >= 0``.
    """
    grad = np.asarray(grad, dtype=float)
    hess = np.asarray(hess, dtype=float)
    n = grad.size
    if radius <= 0:
        raise ValueError("trust radius must be positive")

    evals, evecs = np.linalg.eigh(0.5 * (hess + hess.T))
    g_tilde = evecs.T @ grad
    lam_min = float(evals[0])

    def step_for(nu: float) -> np.ndarray:
        return -g_tilde / (evals + nu)

    # Interior Newton step when H is positive definite and the step fits.
    if lam_min > tol:
        p = step_for(0.0)
        if np.linalg.norm(p) <= radius:
            step = evecs @ p
            pred = -(grad @ step + 0.5 * step @ hess @ step)
            return step, max(pred, 0.0)

    nu_floor = max(0.0, -lam_min) + tol

    # Hard case: gradient (numerically) orthogonal to the bottom eigenspace
    # and the boundary unreachable by shrinking nu towards the floor.
    bottom = np.abs(evals - lam_min) <= 1e-10 * max(1.0, abs(lam_min))
    if np.all(np.abs(g_tilde[bottom]) < HARD_CASE_GRAD_TOL):
        p = -g_tilde / np.where(bottom, np.inf, evals - lam_min + tol)
        norm_p = np.linalg.norm(p)
        if norm_p < radius:
            # Move along the bottom eigenvector to the boundary.
            extra = np.sqrt(max(radius ** 2 - norm_p ** 2, 0.0))
            direction = np.zeros(n)
            direction[np.argmax(bottom)] = 1.0
            p = p + extra * direction
            step = evecs @ p
            pred = -(grad @ step + 0.5 * step @ hess @ step)
            return step, max(pred, 0.0)

    # Secular equation: find nu with |p(nu)| = radius by safeguarded Newton
    # on phi(nu) = 1/|p| - 1/radius (standard reformulation; nearly linear).
    lo = nu_floor
    hi = max(nu_floor * 2, 1.0)
    while np.linalg.norm(step_for(hi)) > radius and hi < 1e16:
        hi *= 4.0
    nu = 0.5 * (lo + hi)
    for _ in range(max_iter):
        p = step_for(nu)
        norm_p = np.linalg.norm(p)
        if norm_p < DEGENERATE_STEP_NORM:
            break
        phi = 1.0 / norm_p - 1.0 / radius
        if abs(phi) < tol / radius:
            break
        # d|p|/dnu = -(sum g^2/(l+nu)^3)/|p|
        dnorm = -np.sum(g_tilde ** 2 / (evals + nu) ** 3) / norm_p
        dphi = -dnorm / norm_p ** 2
        if phi > 0:       # step too short -> decrease nu
            hi = min(hi, nu)
        else:             # step too long -> increase nu
            lo = max(lo, nu)
        if dphi != 0.0:  # det: ignore[NUM205] -- exact-zero sentinel guarding the Newton division below, not a convergence tolerance
            nu_newton = nu - phi / dphi
        else:
            nu_newton = 0.5 * (lo + hi)
        nu = nu_newton if lo < nu_newton < hi else 0.5 * (lo + hi)

    p = step_for(nu)
    norm_p = np.linalg.norm(p)
    if norm_p > radius:
        p *= radius / norm_p
    step = evecs @ p
    pred = -(grad @ step + 0.5 * step @ hess @ step)
    return step, max(pred, 0.0)
