#!/usr/bin/env python
"""Posterior uncertainty calibration.

"For many downstream analyses, accurately quantifying the uncertainty of
parameters' point estimates is as important as the accuracy of the point
estimates themselves" (paper, Section I).  This example checks the claim
empirically: across many synthetic stars, the fraction of true fluxes
falling inside the variational 95% credible interval should be near 95%,
and fainter sources should carry proportionally wider intervals.

Run:  python examples/uncertainty_calibration.py   (about a minute)
"""

import numpy as np

from repro.core import CatalogEntry, default_priors, make_context, posterior_summary
from repro.core.single import OptimizeConfig, optimize_source
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image


def main():
    rng = np.random.default_rng(95)
    priors = default_priors()
    cfg = OptimizeConfig(max_iter=30)

    n_trials = 24
    level = 0.9
    covered = 0
    rel_widths = {"bright": [], "faint": []}

    for k in range(n_trials):
        bright = k % 2 == 0
        flux = float(rng.uniform(30, 60)) if bright else float(rng.uniform(3, 7))
        truth = CatalogEntry([13.0, 12.0], False, flux,
                             [1.5, 1.1, 0.25, 0.05] + rng.normal(0, 0.1, 4))
        images = [
            render_image([truth], ImageMeta(
                band=b, wcs=AffineWCS.translation(0.0, 0.0),
                psf=default_psf(3.0), sky_level=100.0, calibration=100.0),
                (26, 26), rng=rng)
            for b in (1, 2, 3)
        ]
        ctx = make_context(images, truth.position, priors)
        res = optimize_source(ctx, truth, cfg)
        s = posterior_summary(res.params, level=level)
        lo, hi = s.flux_interval
        hit = lo <= flux <= hi
        covered += hit
        rel_widths["bright" if bright else "faint"].append((hi - lo) / flux)
        print("source %2d: flux %5.1f, %d%% interval [%6.1f, %6.1f] %s" % (
            k, flux, int(level * 100), lo, hi, "ok" if hit else "MISS"))

    print("\ncoverage: %d/%d = %.0f%% (nominal %.0f%%)" % (
        covered, n_trials, 100 * covered / n_trials, 100 * level))
    print("median relative interval width: bright %.2f, faint %.2f" % (
        np.median(rel_widths["bright"]), np.median(rel_widths["faint"])))
    print("(faint sources near the detection limit carry the wide posteriors,")
    print(" which is exactly why the paper insists on Bayesian catalogs;")
    print(" mild undercoverage is the textbook mean-field VI behavior —")
    print(" factorized posteriors understate variance)")


if __name__ == "__main__":
    main()
