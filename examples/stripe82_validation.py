#!/usr/bin/env python
"""Stripe-82-style validation: Celeste vs the Photo heuristic (Table II).

Builds a small synthetic stripe, images it repeatedly (the Stripe 82
situation), and compares two catalogs built from *single-epoch* imagery:

- the Photo-style heuristic pipeline (detection + moments + thresholds);
- Celeste's joint variational inference.

Both are scored against ground truth with the paper's twelve Table II error
metrics.  Expect Celeste ahead on position, brightness and colors — the
paper's headline science result.

Run:  python examples/stripe82_validation.py   (takes a couple of minutes)
"""

import numpy as np

from repro.core import JointConfig, default_priors, optimize_region
from repro.core.single import OptimizeConfig
from repro.photo import run_photo
from repro.survey import SurveyConfig, SyntheticSkyConfig, build_survey
from repro.validation import TABLE2_ROWS, match_catalogs, score_catalog


def main():
    rng = np.random.default_rng(82)
    config = SurveyConfig(
        field_width=70, field_height=70, fields_per_run=1, n_runs=1,
        sky=SyntheticSkyConfig(source_density=14.0, min_separation=7.0,
                               flux_floor=8.0),
    )
    layout = build_survey(config, rng=rng)
    truth = layout.truth
    print("Synthetic stripe: %d sources (%d galaxies), %d images" % (
        len(truth), len(truth.galaxies()), len(layout.images)))

    # --- Photo on the single-epoch field -------------------------------------
    field_images = [im for im in layout.images]
    photo_cat = run_photo(field_images)
    print("Photo detected %d sources" % len(photo_cat))

    # --- Celeste, initialized from Photo's detections ------------------------
    # (the paper initializes from an existing catalog; using Photo's output
    # makes the comparison match-for-match fair)
    matched = match_catalogs(truth, photo_cat)
    init_entries = [e for _, e in matched.pairs]
    priors = default_priors()
    print("Running Celeste on %d detections..." % len(init_entries))
    celeste = optimize_region(
        field_images, init_entries, priors,
        JointConfig(n_passes=1, single=OptimizeConfig(max_iter=25)),
    )

    photo_m = score_catalog(truth, photo_cat).as_rows()
    celeste_m = score_catalog(truth, celeste.catalog).as_rows()

    print("\nTable II reproduction (average error; lower is better)")
    print("%-14s %10s %10s   %s" % ("", "Photo", "Celeste", "winner"))
    for row in TABLE2_ROWS:
        p, c = photo_m[row], celeste_m[row]
        winner = "-"
        if np.isfinite(p) and np.isfinite(c):
            winner = "Celeste" if c < p else ("Photo" if p < c else "tie")
        print("%-14s %10.3f %10.3f   %s" % (row, p, c, winner))


if __name__ == "__main__":
    main()
