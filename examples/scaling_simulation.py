#!/usr/bin/env python
"""Regenerate the paper's scaling figures on the cluster simulator.

Prints the data series behind Figure 4 (weak scaling), Figure 5 (strong
scaling), and Table I (sustained FLOP rates at 9,600 nodes), using the
Cori-like machine model and the real Dtree scheduler.

Run:  python examples/scaling_simulation.py   (about a minute)
"""

from repro.cluster import performance_run, strong_scaling, weak_scaling
from repro.cluster.simulate import scaling_efficiency


def print_components(results):
    print("%8s %10s %10s %10s %8s %10s" % (
        "nodes", "task proc", "img load", "imbalance", "other", "total"))
    for r in results:
        c = r.components
        print("%8d %10.1f %10.1f %10.1f %8.2f %10.1f" % (
            r.machine.n_nodes, c.task_processing, c.image_loading,
            c.load_imbalance, c.other, r.wall_seconds))


def main():
    print("=== Figure 4: weak scaling (4 tasks/process, seconds) ===")
    weak = weak_scaling([1, 8, 32, 128, 512, 2048, 8192])
    print_components(weak)
    growth = weak[-1].wall_seconds / weak[0].wall_seconds
    print("runtime growth 1 -> 8192 nodes: %.2fx (paper: 1.9x)" % growth)

    print("\n=== Figure 5: strong scaling (557,056 tasks, seconds) ===")
    strong = strong_scaling([2048, 4096, 8192])
    print_components(strong)
    effs = scaling_efficiency(strong)
    print("efficiency 2k->4k: %.0f%% (paper: 65%%); 2k->8k: %.0f%% (paper: 50%%)"
          % (effs[1] * 100, effs[2] * 100))

    print("\n=== Table I: sustained FLOP rate, 9600 nodes ===")
    res, report = performance_run()
    paper = {"task processing": 693.69, "+load imbalance": 413.19,
             "+image loading": 211.94}
    print("%-18s %12s %12s" % ("scope", "ours TFLOP/s", "paper"))
    for k, v in report.as_table().items():
        print("%-18s %12.1f %12.1f" % (k, v, paper[k]))
    print("machine peak: %.2f PFLOP/s (paper peak observed: 1.54)" % (
        res.machine.peak_flops() / 1e15))


if __name__ == "__main__":
    main()
