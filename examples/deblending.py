#!/usr/bin/env python
"""Deblending: why overlapping sources must be optimized jointly.

Renders two stars close enough that their point-spread functions blend, then
estimates their fluxes two ways:

1. *isolated* — each source fit against a sky-only background (what a
   per-source pipeline does);
2. *joint* — block coordinate ascent with residual backgrounds (the paper's
   mid-level optimization).

The isolated fits over-count the shared photons; the joint fit splits them.

Run:  python examples/deblending.py
"""

import numpy as np

from repro.core import (
    CatalogEntry,
    JointConfig,
    default_priors,
    make_context,
    optimize_region,
)
from repro.core.single import OptimizeConfig, optimize_source, to_catalog_entry
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image


def main():
    rng = np.random.default_rng(3)
    sep = 4.0  # ~1.3 PSF FWHM: heavily blended
    truth = [
        CatalogEntry([16.0, 14.0], False, 50.0, [1.5, 1.1, 0.25, 0.05]),
        CatalogEntry([16.0 + sep, 14.0], False, 25.0, [1.2, 0.9, 0.2, 0.0]),
    ]
    images = [
        render_image(truth, ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (28, 40), rng=rng)
        for b in (1, 2, 3)
    ]
    priors = default_priors()
    cfg = OptimizeConfig(max_iter=30)

    print("Two stars separated by %.1f px (PSF FWHM 3.0 px)" % sep)
    print("true fluxes: %.0f and %.0f nmgy\n" % (truth[0].flux_r, truth[1].flux_r))

    print("Isolated fits (sky-only backgrounds):")
    iso = []
    for t in truth:
        ctx = make_context(images, t.position, priors)
        est = to_catalog_entry(optimize_source(ctx, t, cfg).params)
        iso.append(est)
        print("  flux %.1f (true %.0f)  -> error %+.0f%%" % (
            est.flux_r, t.flux_r, 100 * (est.flux_r / t.flux_r - 1)))

    print("\nJoint fit (residual backgrounds, 2 passes):")
    joint = optimize_region(images, truth, priors,
                            JointConfig(n_passes=2, single=cfg))
    for t, est in zip(truth, joint.catalog):
        print("  flux %.1f (true %.0f)  -> error %+.0f%%" % (
            est.flux_r, t.flux_r, 100 * (est.flux_r / t.flux_r - 1)))

    iso_err = sum(abs(e.flux_r - t.flux_r) for e, t in zip(iso, truth))
    joint_err = sum(abs(e.flux_r - t.flux_r)
                    for e, t in zip(joint.catalog, truth))
    print("\ntotal |flux error|: isolated %.1f vs joint %.1f nmgy" % (
        iso_err, joint_err))


if __name__ == "__main__":
    main()
