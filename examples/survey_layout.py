#!/usr/bin/env python
"""Survey geometry: overlapping fields and non-uniform coverage (Figures 1, 3).

Builds a multi-run synthetic survey and prints an ASCII coverage map — the
number of images covering each patch of sky — plus the coverage histogram of
the truth catalog.  Overlap between fields and runs is what forces Celeste
to fuse multiple images per source (and what the heuristic baseline throws
away).

Run:  python examples/survey_layout.py
"""

import numpy as np

from repro.survey import SurveyConfig, build_survey


def main():
    rng = np.random.default_rng(1)
    config = SurveyConfig(field_width=80, field_height=60, fields_per_run=3,
                          n_runs=2)
    layout = build_survey(config, rng=rng, n_epochs=2)

    print("fields: %d  images: %d  truth sources: %d" % (
        len(layout.field_specs), len(layout.images), len(layout.truth)))
    for spec in layout.field_specs:
        x0, x1, y0, y1 = spec.bounds()
        print("  run %4d field %d epoch %d: x [%5.1f, %5.1f) y [%5.1f, %5.1f)"
              % (spec.run, spec.field, spec.epoch, x0, x1, y0, y1))

    x_min, x_max, y_min, y_max = layout.sky_bounds()
    nx, ny = 48, 14
    print("\ncoverage map (images per sky patch):")
    for iy in range(ny - 1, -1, -1):
        row = ""
        for ix in range(nx):
            p = np.array([
                x_min + (ix + 0.5) * (x_max - x_min) / nx,
                y_min + (iy + 0.5) * (y_max - y_min) / ny,
            ])
            n = sum(im.contains_sky(p) for im in layout.images) // 5  # per band
            row += str(min(n, 9))
        print("  " + row)

    counts = layout.coverage_counts()
    print("\nimages covering each source: min %d, median %d, max %d" % (
        counts.min(), int(np.median(counts)), counts.max()))
    print("(real SDSS: 5 to 480 images per source — same non-uniformity, "
          "smaller scale)")


if __name__ == "__main__":
    main()
