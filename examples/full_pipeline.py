#!/usr/bin/env python
"""The complete three-level pipeline over a multi-field synthetic survey.

Runs everything the paper runs, end to end: Photo seeds a catalog per field,
the sky is partitioned into two-stage shifted tasks, a Dtree scheduler hands
task batches to node-workers, each task jointly optimizes its region with
Cyclades-scheduled threads, and the results merge into one deduplicated
global catalog — scored against the injected ground truth.

Then a second run is "killed" right after stage 0 checkpoints (so its
checkpoint file is exactly what a process dying during stage 1 leaves on
disk), resumed, and checked to reproduce the same final catalog as the
uninterrupted run.

Finally the same survey runs under **process node-workers** — spawn-safe
multiprocessing over the shared-memory PGAS catalog, the paper's
distributed-memory layout — and the final catalog is checked to be
bit-for-bit identical to the thread executor's.

Run:  python examples/full_pipeline.py   (a few minutes)
"""

import dataclasses
import os
import tempfile
import time

import numpy as np

from repro.core.joint import JointConfig
from repro.core.single import OptimizeConfig
from repro.driver import DriverConfig, run_pipeline
from repro.parallel import ParallelRegionConfig
from repro.survey import SyntheticSkyConfig, generate_survey_fields
from repro.validation import match_catalogs, score_catalog

N_FIELDS = 4


def make_config(checkpoint_path):
    return DriverConfig(
        n_nodes=2,
        target_weight=60.0,
        parallel=ParallelRegionConfig(
            n_threads=2,
            n_passes=1,
            joint=JointConfig(
                n_passes=1,
                single=OptimizeConfig(max_iter=15, grad_tol=1e-3),
            ),
        ),
        checkpoint_path=checkpoint_path,
    )


def catalogs_equal(a, b):
    if len(a) != len(b):
        return False
    return all(
        np.allclose(x.position, y.position)
        and np.isclose(x.flux_r, y.flux_r)
        and x.is_galaxy == y.is_galaxy
        for x, y in zip(a, b)
    )


def catalogs_identical(a, b):
    """Bit-for-bit equality (no tolerance): the executor-equivalence bar."""
    if len(a) != len(b):
        return False
    return all(
        np.array_equal(x.position, y.position)
        and x.flux_r == y.flux_r
        and x.is_galaxy == y.is_galaxy
        and np.array_equal(x.colors, y.colors)
        for x, y in zip(a, b)
    )


def main():
    rng = np.random.default_rng(11)
    sky = SyntheticSkyConfig(
        source_density=70.0, min_separation=7.0, flux_floor=15.0
    )
    print("Synthesizing %d overlapping fields..." % N_FIELDS)
    truth, fields = generate_survey_fields(
        N_FIELDS, field_shape_hw=(44, 44), overlap=8.0,
        config=sky, rng=rng, bands=(1, 2, 3),
    )
    print("  %d injected sources over a %d-field strip" % (
        len(truth), N_FIELDS))

    ckpt_path = os.path.join(tempfile.mkdtemp(), "pipeline.ckpt.json")
    config = make_config(ckpt_path)

    print("\nRunning partition -> Dtree -> Cyclades -> merge...")
    t0 = time.time()
    result = run_pipeline(fields, config)
    print("  done in %.1f s" % (time.time() - t0))

    match = match_catalogs(truth, result.catalog)
    scores = score_catalog(truth, result.catalog)
    print("\nSeed catalog: %d sources; final catalog: %d sources" % (
        len(result.seed_catalog), len(result.catalog)))
    print("Recovered %.0f%% of injected sources (false rate %.0f%%)" % (
        100 * match.completeness, 100 * match.false_detection_rate))
    print("Position error %.3f px, brightness error %.3f mag" % (
        scores.position, scores.brightness))

    print("\nDriver report:")
    for line in result.report.summary_lines():
        print("  " + line)

    # -- Kill/resume: a second run dies after stage 0, then resumes -----------
    print("\nRunning again, killed right after stage 0 checkpoints...")
    kill_path = os.path.join(tempfile.mkdtemp(), "killed.ckpt.json")
    killed_config = dataclasses.replace(
        make_config(kill_path), stop_after="stage0"
    )
    partial = run_pipeline(fields, killed_config)
    assert partial.stopped_early

    print("Resuming from the checkpoint...")
    t0 = time.time()
    resumed = run_pipeline(fields, make_config(kill_path))
    print("  resumed (skipped %s) and finished in %.1f s" % (
        resumed.resumed_stages, time.time() - t0))

    same = catalogs_equal(result.catalog, resumed.catalog)
    print("Resumed catalog identical to uninterrupted run: %s" % same)
    assert same, "kill/resume must reproduce the same final catalog"
    assert match.completeness >= 0.9, "driver must recover >=90% of sources"

    # -- Process node-workers over the shared-memory PGAS catalog -------------
    print("\nRunning again with process node-workers (spawn + PGAS windows)...")
    t0 = time.time()
    process_config = dataclasses.replace(make_config(None), executor="process")
    process_result = run_pipeline(fields, process_config)
    print("  done in %.1f s" % (time.time() - t0))
    print("  catalog RMA: %d gets / %d puts (%.1f KB one-sided)" % (
        process_result.report.rma_gets, process_result.report.rma_puts,
        process_result.report.rma_bytes / 1024.0))
    identical = catalogs_identical(result.catalog, process_result.catalog)
    print("Process-executor catalog bit-for-bit identical: %s" % identical)
    assert identical, "executors must produce identical catalogs"
    print("\nOK")


if __name__ == "__main__":
    main()
