#!/usr/bin/env python
"""Quickstart: infer a small astronomical catalog with Celeste.

Generates a synthetic five-band field containing a handful of stars and
galaxies, runs the variational inference engine jointly over all sources,
and prints the inferred catalog side by side with the ground truth —
including the posterior uncertainties that distinguish a Bayesian catalog
from a heuristic one.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    CatalogEntry,
    JointConfig,
    default_priors,
    optimize_region,
    posterior_summary,
)
from repro.core.single import OptimizeConfig
from repro.survey import generate_field_images, SyntheticSkyConfig
from repro.core.catalog import Catalog


def main():
    rng = np.random.default_rng(7)

    # Ground truth: three stars and two galaxies on one 60x60-pixel field.
    truth = Catalog([
        CatalogEntry([14.0, 15.0], False, 45.0, [1.5, 1.1, 0.25, 0.05]),
        CatalogEntry([44.0, 12.0], False, 25.0, [1.2, 0.9, 0.2, 0.0]),
        CatalogEntry([30.0, 30.0], True, 90.0, [0.7, 0.45, 0.6, 0.45],
                     gal_radius_px=2.5, gal_axis_ratio=0.55, gal_angle=0.8,
                     gal_frac_dev=0.3),
        CatalogEntry([12.0, 46.0], True, 60.0, [0.9, 0.6, 0.7, 0.55],
                     gal_radius_px=1.8, gal_axis_ratio=0.75, gal_angle=2.2,
                     gal_frac_dev=0.7),
        CatalogEntry([48.0, 44.0], False, 18.0, [1.7, 1.3, 0.35, 0.1]),
    ])

    print("Rendering a synthetic 5-band field (%d sources)..." % len(truth))
    images = generate_field_images(
        truth, origin=(0.0, 0.0), shape_hw=(60, 60),
        config=SyntheticSkyConfig(), rng=rng,
    )

    priors = default_priors()
    print("Running joint variational inference (Newton + trust region)...")
    result = optimize_region(
        images, list(truth), priors,
        JointConfig(n_passes=2, single=OptimizeConfig(max_iter=30)),
    )

    print("\n%-3s %-6s %-22s %-18s %-12s" % (
        "id", "type", "position (true)", "flux_r (true)", "P(galaxy)"))
    for i, (t, est, res) in enumerate(
        zip(truth, result.catalog, result.results)
    ):
        s = posterior_summary(res.params)
        print("%-3d %-6s (%5.1f,%5.1f) vs (%4.0f,%4.0f)  %6.1f+-%-4.1f (%3.0f) %8.3f" % (
            i,
            "gal" if est.is_galaxy else "star",
            est.position[0], est.position[1],
            t.position[0], t.position[1],
            s.flux_mean, s.flux_sd, t.flux_r,
            s.prob_galaxy,
        ))
        lo, hi = s.flux_interval
        inside = "yes" if lo <= t.flux_r <= hi else "NO"
        print("     95%% flux interval: [%6.1f, %6.1f]  contains truth: %s" % (
            lo, hi, inside))

    n_right = sum(
        est.is_galaxy == t.is_galaxy for t, est in zip(truth, result.catalog)
    )
    print("\n%d/%d sources classified correctly; total ELBO %.1f" % (
        n_right, len(truth), result.elbo_total))


if __name__ == "__main__":
    main()
