"""Section II: variational inference vs Laplace (Tractor) vs MCMC.

The paper's positioning claims, measured on one source with shared model
code: VI's optimization problem is "often orders of magnitude faster to
solve compared to MCMC approaches" (per effective sample), and Laplace
approximation "is not suitable for categorical random variables" — its
mode-based evidence handles the star/galaxy variable far more brittlely
than VI's explicit Bernoulli posterior.
"""

import time

import numpy as np

from repro.baselines import laplace_approximation, metropolis_hastings
from repro.baselines.model import PointParameterization, point_log_posterior
from repro.core import CatalogEntry, default_priors, make_context
from repro.core.single import OptimizeConfig, optimize_source, to_catalog_entry
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header


def make_ctx(seed=0):
    truth = CatalogEntry([13.0, 12.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(seed)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (26, 26), rng=rng)
        for b in (1, 2, 3)
    ]
    return make_context(images, truth.position, default_priors()), truth


def test_inference_method_comparison(benchmark):
    ctx, truth = make_ctx()

    def run_all():
        t0 = time.perf_counter()
        vi = optimize_source(ctx, truth, OptimizeConfig(max_iter=60))
        t_vi = time.perf_counter() - t0

        t0 = time.perf_counter()
        star_fit, gal_fit, lap_pg = laplace_approximation(ctx, truth)
        t_lap = time.perf_counter() - t0

        p = PointParameterization(False)

        def lp(theta):
            return float(point_log_posterior(ctx, False, theta, order=1).val)

        t0 = time.perf_counter()
        rng = np.random.default_rng(1)
        chain = metropolis_hastings(lp, star_fit.mode, n_samples=1200,
                                    burn_in=400, initial_scale=0.02, rng=rng)
        t_mcmc = time.perf_counter() - t0
        return vi, (star_fit, gal_fit, lap_pg), t_lap, chain, t_mcmc, t_vi

    vi, (star_fit, gal_fit, lap_pg), t_lap, chain, t_mcmc, t_vi = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )

    est = to_catalog_entry(vi.params)
    mcmc_flux = float(np.exp(chain.mean()[2]))
    mcmc_flux_sd = float(mcmc_flux * chain.sd()[2])
    ess = float(np.min(chain.ess()))

    print_header("Inference methods on one star (true flux 30 nmgy)")
    print("%-22s %10s %12s %12s %10s" % ("method", "time (s)", "flux",
                                         "flux sd", "P(galaxy)"))
    print("%-22s %10.2f %12.2f %12.2f %10.4f" % (
        "VI (Celeste)", t_vi, est.flux_r, est.flux_r_sd, est.prob_galaxy))
    print("%-22s %10.2f %12.2f %12.2f %10.4f" % (
        "Laplace (Tractor)", t_lap, np.exp(star_fit.summary["log_flux"]),
        star_fit.flux_sd, lap_pg))
    print("%-22s %10.2f %12.2f %12.2f %10s" % (
        "MCMC (random walk)", t_mcmc, mcmc_flux, mcmc_flux_sd,
        "(per type)"))
    print("MCMC min ESS: %.0f from %d samples (%.1f s / effective sample)" % (
        ess, len(chain.samples), t_mcmc / max(ess, 1)))
    print("VI wall time per source ~ %.0fx cheaper than MCMC per ~1k ESS" % (
        (t_mcmc / max(ess, 1) * 1000) / max(t_vi, 1e-9)))

    # All three methods agree on the flux to within joint uncertainty.
    assert abs(est.flux_r - mcmc_flux) < 4 * max(est.flux_r_sd, mcmc_flux_sd)
    assert abs(np.exp(star_fit.summary["log_flux"]) - est.flux_r) < 4 * est.flux_r_sd
    # Both VI and Laplace-evidence call it a star, but VI is the one with a
    # native categorical posterior.
    assert est.prob_galaxy < 0.5
    assert lap_pg < 0.5
    # MCMC pays heavily per effective sample vs one VI solve.
    assert t_mcmc / max(ess, 1) * 1000 > t_vi
