"""Section VII-B: the threads x processes node-configuration sweep.

"We empirically determined that eight threads per process and 17 processes
per Intel Xeon Phi processor yields the highest throughput" — the optimum
balances intra-task thread idling (favors fewer threads) against inter-
process load imbalance from fewer tasks per process (favors fewer
processes).
"""

from repro.cluster import MachineConfig, WorkloadConfig, simulate_run

from conftest import print_header

#: (processes_per_node, threads_per_process) with 136 HW threads occupied.
CONFIGS = [(34, 4), (17, 8), (8, 17), (4, 34), (2, 68)]


def run_sweep():
    out = []
    for ppn, tpp in CONFIGS:
        machine = MachineConfig(n_nodes=4, processes_per_node=ppn,
                                threads_per_process=tpp)
        result = simulate_run(machine, WorkloadConfig(n_tasks=4 * 68, seed=11))
        out.append((ppn, tpp, result))
    return out


def test_node_configuration_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_header("Node configuration sweep (68 tasks/node, 4 nodes)")
    print("%8s %8s %12s %16s" % ("procs", "threads", "wall (s)",
                                 "Mvisits/s/node"))
    throughput = {}
    for ppn, tpp, r in results:
        thr = r.total_visits / r.wall_seconds / r.machine.n_nodes
        throughput[(ppn, tpp)] = thr
        print("%8d %8d %12.1f %16.2f" % (ppn, tpp, r.wall_seconds, thr / 1e6))

    best = max(throughput, key=throughput.get)
    print("best configuration: %d processes x %d threads (paper: 17 x 8)"
          % best)
    assert best == (17, 8)
    # And the optimum is a real interior maximum, not a plateau edge.
    assert throughput[(17, 8)] > 1.02 * throughput[(34, 4)]
    assert throughput[(17, 8)] > 1.02 * throughput[(2, 68)]
