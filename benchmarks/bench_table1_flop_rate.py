"""Table I: sustained FLOP rate of the 9,600-node performance run.

Paper values (TFLOP/s): task processing 693.69, +load imbalance 413.19,
+image loading 211.94; peak observed 1.54 PFLOP/s on 1,303,832 threads.
"""

import numpy as np

from repro.cluster import performance_run

from conftest import print_header

PAPER = {
    "task processing": 693.69,
    "+load imbalance": 413.19,
    "+image loading": 211.94,
}


def run_table1():
    result, report = performance_run()
    return result, report


def test_table1_flop_rates(benchmark):
    result, report = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    table = report.as_table()

    print_header("Table I — sustained FLOP rate (TFLOP/s), 9600 nodes")
    print("%-18s %12s %12s %8s" % ("scope", "simulated", "paper", "ratio"))
    for scope, paper_val in PAPER.items():
        ours = table[scope]
        print("%-18s %12.1f %12.1f %8.2f" % (scope, ours, paper_val,
                                             ours / paper_val))
    peak = result.machine.peak_flops() / 1e15
    print("machine peak: %.3f PFLOP/s (paper observed peak: 1.54)" % peak)

    # Shape assertions: each scope within 2x of the paper; ordering holds;
    # the first scope is calibrated and must be tight.
    np.testing.assert_allclose(table["task processing"], PAPER["task processing"],
                               rtol=0.05)
    for scope, paper_val in PAPER.items():
        assert 0.5 < table[scope] / paper_val < 2.0
    assert (table["task processing"] > table["+load imbalance"]
            > table["+image loading"])
    np.testing.assert_allclose(peak, 1.54, rtol=0.02)
