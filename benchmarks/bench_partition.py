"""Section IV-A: task generation (preprocessing) throughput and balance.

Task generation runs as "a one-off job, executed on a small number of
nodes"; it must chew through catalogs of hundreds of millions of sources.
This benchmark partitions a 50k-source catalog and checks the equal-work
property that motivates the design.
"""

import numpy as np

from repro.core.catalog import Catalog, CatalogEntry
from repro.partition import Region, bright_pixel_weight, generate_tasks

from conftest import print_header


def big_catalog(n=50_000, seed=0):
    rng = np.random.default_rng(seed)
    # Clustered sky: half the sources in a dense blob (non-uniform density
    # is exactly why uniform region sizes fail).
    pos = np.concatenate([
        rng.uniform(0, 1000, size=(n // 2, 2)),
        rng.normal([300, 300], 60, size=(n // 2, 2)).clip(0, 999.9),
    ])
    flux = np.exp(rng.normal(1.0, 1.0, n)) + 0.1
    entries = [
        CatalogEntry(pos[i], bool(rng.random() < 0.5), float(flux[i]),
                     np.zeros(4))
        for i in range(n)
    ]
    return Catalog(entries)


def test_task_generation(benchmark):
    catalog = big_catalog()
    bounds = Region(0.0, 1000.0, 0.0, 1000.0)
    target = 600.0

    tasks = benchmark.pedantic(
        lambda: generate_tasks(catalog, bounds, target, two_stage=True),
        rounds=1, iterations=1,
    )
    stage0 = [t for t in tasks if t.stage == 0]
    weights = np.array([t.weight() for t in stage0])

    print_header("Task generation: 50k-source clustered catalog")
    print("tasks: %d stage-0 + %d stage-1" % (
        len(stage0), len(tasks) - len(stage0)))
    print("stage-0 weight: target %.0f, p50 %.0f, p95 %.0f, max %.0f" % (
        target, np.percentile(weights, 50), np.percentile(weights, 95),
        weights.max()))
    area = [t.region.area for t in stage0]
    print("region area: min %.0f, max %.0f (adaptive sizing ratio %.0fx)" % (
        min(area), max(area), max(area) / min(area)))

    # Every source appears in exactly one stage-0 task.
    seen = sorted(i for t in stage0 for i in t.source_indices)
    assert seen == list(range(len(catalog)))
    # Equal-work property: the bulk of tasks sit near/below target weight.
    assert np.percentile(weights, 90) < 1.3 * target
    # Adaptivity: dense sky gets much smaller regions.
    assert max(area) / min(area) > 8
