"""Figure 4: weak scaling — work grows with the node count.

Two halves share the committed ``BENCH_scaling.json``:

**Measured** (``fig4_weak_scaling.measured``): the real three-level driver
with process node-workers talking to the sharded catalog over the TCP
socket transport, one survey field per node-worker at 1/2/4/8 nodes.
Absolute times come from this machine (a single shared box, so wall time
*grows* with work — the asserted properties are correctness ones: the
catalog is bit-identical at every node count, every node-worker really
participates, and the one-sided traffic crosses the socket server).

**Paper model** (``fig4_weak_scaling.simulated``): the analytic Cray XC40
model at the paper's 1→8192-node scale, asserting the paper's shape
claims — task processing and image loading ~constant, load imbalance
dominating past ~32 nodes, total runtime growth ~1.9x.

**Smoke mode** (``REPRO_BENCH_SMOKE=1``): a seconds-long wiring check that
runs tiny surveys at 1/2 nodes and does not rewrite the committed JSON.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster import weak_scaling
from repro.core.joint import JointConfig
from repro.core.single import OptimizeConfig
from repro.driver import DriverConfig, run_pipeline
from repro.envvars import env_flag
from repro.parallel import ParallelRegionConfig
from repro.survey import SyntheticSkyConfig, generate_survey_fields

from conftest import print_header

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)

SMOKE = env_flag("REPRO_BENCH_SMOKE")

SIM_NODE_COUNTS = [1, 8, 32, 128, 512, 2048, 8192]
MEASURED_NODE_COUNTS = [1, 2] if SMOKE else [1, 2, 4, 8]


def _merge_into_json(section: str, payload) -> None:
    """Merge one section into the committed benchmark JSON, preserving the
    other sections (fig 4 and fig 5 share the file)."""
    record = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            record = json.load(fh)
    record[section] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _survey(n_fields):
    rng = np.random.default_rng(5)
    sky = SyntheticSkyConfig(
        source_density=90.0, min_separation=8.0, flux_floor=20.0
    )
    return generate_survey_fields(
        n_fields,
        field_shape_hw=(24, 24) if SMOKE else (32, 32),
        overlap=8.0, config=sky, rng=rng, bands=(2,),
    )


def _config(n_nodes):
    return DriverConfig(
        n_nodes=n_nodes,
        executor="process",
        pgas_transport="socket",
        target_weight=30.0,
        parallel=ParallelRegionConfig(
            n_threads=1,
            n_passes=1,
            joint=JointConfig(
                n_passes=1,
                single=OptimizeConfig(max_iter=8, grad_tol=2e-3),
            ),
        ),
    )


def _catalog_rows(catalog):
    return [(tuple(float(v) for v in e.position), float(e.flux_r))
            for e in catalog]


def test_fig4_weak_scaling_measured(benchmark):
    """One field per node-worker, real driver, socket transport."""

    def run():
        out = {}
        for n in MEASURED_NODE_COUNTS:
            _, fields = _survey(n)
            out[n] = run_pipeline(fields, _config(n))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    curve = []
    for n, res in results.items():
        r = res.report
        workers = {rec["worker"] for rec in r.worker_comm}
        curve.append({
            "n_nodes": n,
            "n_fields": n,
            "n_tasks": r.n_tasks,
            "wall_seconds": r.wall_seconds,
            "task_seconds": r.task_seconds,
            "sources_per_second": r.sources_per_second,
            "rma_gets": r.rma_gets,
            "rma_puts": r.rma_puts,
            "rma_bytes": r.rma_bytes,
            "participating_workers": len(workers),
        })

    print_header("Figure 4 — weak scaling, measured "
                 "(real driver, socket transport)")
    print("%8s %8s %8s %10s %12s %9s" % (
        "nodes", "fields", "tasks", "wall s", "sources/s", "workers"))
    for row in curve:
        print("%8d %8d %8d %10.2f %12.2f %9d" % (
            row["n_nodes"], row["n_fields"], row["n_tasks"],
            row["wall_seconds"], row["sources_per_second"],
            row["participating_workers"]))

    if not SMOKE:
        _merge_into_json("fig4_weak_scaling_measured", {
            "transport": "socket",
            "executor": "process",
            "fields_per_node": 1,
            "curve": curve,
        })
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    for n, res in results.items():
        r = res.report
        assert r.n_tasks > 0
        # The catalog traffic really crossed the socket server.
        assert r.rma_gets > 0 and r.rma_puts > 0 and r.rma_bytes > 0
        workers = {rec["worker"] for rec in r.worker_comm}
        assert workers <= set(range(n))
        # At the multi-node points, the run is genuinely multi-node.
        if n >= 4:
            assert len(workers) >= 4
    # Growing the survey adds work: strictly more tasks at each size.
    tasks = [results[n].report.n_tasks for n in MEASURED_NODE_COUNTS]
    assert tasks == sorted(tasks) and tasks[-1] > tasks[0]


def test_fig4_weak_scaling_paper_model(benchmark):
    results = benchmark.pedantic(
        lambda: weak_scaling(SIM_NODE_COUNTS), rounds=1, iterations=1)

    print_header("Figure 4 — weak scaling, paper model "
                 "(seconds, mean per process)")
    print("%8s %11s %10s %11s %7s %8s" % (
        "nodes", "task proc", "img load", "imbalance", "other", "total"))
    curve = []
    for r in results:
        c = r.components
        print("%8d %11.1f %10.1f %11.1f %7.2f %8.1f" % (
            r.machine.n_nodes, c.task_processing, c.image_loading,
            c.load_imbalance, c.other, r.wall_seconds))
        curve.append({
            "n_nodes": r.machine.n_nodes,
            "task_processing": c.task_processing,
            "image_loading": c.image_loading,
            "load_imbalance": c.load_imbalance,
            "other": c.other,
            "wall_seconds": r.wall_seconds,
        })
    growth = results[-1].wall_seconds / results[0].wall_seconds
    print("runtime growth 1 -> 8192 nodes: %.2fx (paper: ~1.9x)" % growth)

    if not SMOKE:
        _merge_into_json("fig4_weak_scaling_simulated", {
            "tasks_per_process": 4,
            "runtime_growth": growth,
            "curve": curve,
        })

    tp = [r.components.task_processing for r in results]
    loads = [r.components.image_loading for r in results]
    imb = [r.components.load_imbalance for r in results]

    # Task processing nearly constant (communication-free work loop).
    assert max(tp) / min(tp) < 1.2
    # Image loading nearly constant (Burst Buffer keeps per-process rate).
    assert max(loads) / min(loads) < 1.3
    # Imbalance grows and dominates the *growth* beyond 32 nodes.
    assert imb[-1] > imb[0] * 2
    by_node = {r.machine.n_nodes: r for r in results}
    assert (by_node[8192].components.load_imbalance
            > 0.5 * by_node[8192].components.task_processing)
    # Total growth in the paper's ballpark.
    assert 1.4 < growth < 2.8
