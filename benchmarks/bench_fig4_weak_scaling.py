"""Figure 4: weak scaling, 1 to 8192 nodes at 4 tasks per process.

Paper claims: task processing ~constant; image loading ~constant; load
imbalance comes to dominate past ~32 nodes (an artifact of only 4 tasks per
process); total runtime grows ~1.9x from 1 to 8192 nodes.
"""

from repro.cluster import weak_scaling

from conftest import print_header

NODE_COUNTS = [1, 8, 32, 128, 512, 2048, 8192]


def run_weak():
    return weak_scaling(NODE_COUNTS)


def test_fig4_weak_scaling(benchmark):
    results = benchmark.pedantic(run_weak, rounds=1, iterations=1)

    print_header("Figure 4 — weak scaling (seconds, mean per process)")
    print("%8s %11s %10s %11s %7s %8s" % (
        "nodes", "task proc", "img load", "imbalance", "other", "total"))
    for r in results:
        c = r.components
        print("%8d %11.1f %10.1f %11.1f %7.2f %8.1f" % (
            r.machine.n_nodes, c.task_processing, c.image_loading,
            c.load_imbalance, c.other, r.wall_seconds))
    growth = results[-1].wall_seconds / results[0].wall_seconds
    print("runtime growth 1 -> 8192 nodes: %.2fx (paper: ~1.9x)" % growth)

    tp = [r.components.task_processing for r in results]
    loads = [r.components.image_loading for r in results]
    imb = [r.components.load_imbalance for r in results]

    # Task processing nearly constant (communication-free work loop).
    assert max(tp) / min(tp) < 1.2
    # Image loading nearly constant (Burst Buffer keeps per-process rate).
    assert max(loads) / min(loads) < 1.3
    # Imbalance grows and dominates the *growth* beyond 32 nodes.
    assert imb[-1] > imb[0] * 2
    by_node = {r.machine.n_nodes: r for r in results}
    assert (by_node[8192].components.load_imbalance
            > 0.5 * by_node[8192].components.task_processing)
    # Total growth in the paper's ballpark.
    assert 1.4 < growth < 2.8
