"""Section VII-A: per-thread runtime breakdown.

The paper profiles thread runtime into categories (67% generated code, 18%
native dependencies, 10% math library, ...).  Our analogue instruments one
worker's source optimization into vectorized-kernel time, Python
orchestration, and linear-algebra (trust-region) time, and reports the
fractions.
"""

import time

import numpy as np

from repro.core import CatalogEntry, default_priors, elbo, make_context
from repro.core.params import FREE, canonical_to_free
from repro.core.single import initial_params
from repro.optim import solve_trust_region
from repro.perf import RuntimeBreakdown
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header


def test_perthread_breakdown(benchmark):
    truth = CatalogEntry([13.0, 12.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(3)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (26, 26), rng=rng)
        for b in (1, 2, 3)
    ]
    priors = default_priors()
    ctx = make_context(images, truth.position, priors)
    free = canonical_to_free(
        initial_params(truth, priors).to_canonical(), ctx.u_center
    )
    elbo(ctx, free, order=2)  # warm-up

    def run_instrumented():
        breakdown = RuntimeBreakdown()
        x = free.copy()
        for _ in range(8):
            with breakdown.region("objective kernel (vectorized)"):
                out = elbo(ctx, x, order=2)
                g = out.gradient(FREE.size)
                h = out.hessian(FREE.size)
            with breakdown.region("trust region (eigendecomposition)"):
                step, _ = solve_trust_region(-g, -h, radius=0.5)
            with breakdown.region("orchestration (python)"):
                x = x + 0.5 * step
                time.sleep(0)  # yield point, mirrors runtime bookkeeping
        return breakdown

    breakdown = benchmark.pedantic(run_instrumented, rounds=1, iterations=1)
    fractions = breakdown.fractions()

    print_header("Per-thread runtime breakdown (one worker, 8 Newton steps)")
    for name, frac in sorted(fractions.items(), key=lambda kv: -kv[1]):
        print("  %-38s %5.1f%%" % (name, 100 * frac))
    print("(paper: 67%% generated code, 18%% native deps, 10%% math lib, "
          "3%% MKL, 2%% libc+kernel)")

    # The vectorized objective dominates, as generated code does in Celeste.
    assert fractions["objective kernel (vectorized)"] > 0.5
    assert sum(fractions.values()) > 0.99
