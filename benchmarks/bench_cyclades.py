"""Section IV-D: Cyclades conflict-free thread scheduling.

Measures (a) conflict-graph + batching overhead on a realistic region, and
(b) that sampled batches shatter into many connected components — the
property that gives Cyclades its parallelism ("even if the conflict graph is
connected, its restriction to a random sample of nodes typically has many
connected components").
"""

import numpy as np

from repro.parallel import build_conflict_graph, cyclades_batches

from conftest import print_header


def make_positions(n=2000, seed=0, box=1500.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box, size=(n, 2))


def test_conflict_graph_construction(benchmark):
    positions = make_positions()
    graph = benchmark(lambda: build_conflict_graph(positions, radii=12.0))
    print_header("Conflict graph over a 2000-source region")
    degrees = [graph.degree(i) for i in range(graph.n)]
    print("edges: %d, mean degree %.2f, max degree %d" % (
        graph.n_edges, np.mean(degrees), max(degrees)))
    assert graph.n_edges > 0


def test_cyclades_batching(benchmark):
    positions = make_positions()
    graph = build_conflict_graph(positions, radii=12.0)
    rng = np.random.default_rng(1)

    batches = benchmark(
        lambda: cyclades_batches(graph, n_threads=8, rng=rng)
    )
    n_comps = [len(b.components) for b in batches]
    loads = [b.max_thread_load() for b in batches]

    print_header("Cyclades batching (8 threads)")
    print("batches per epoch: %d" % len(batches))
    print("components per batch: mean %.1f (batch size 16)" % np.mean(n_comps))
    print("max thread load per batch: mean %.1f" % np.mean(loads))

    # The sampled subgraphs shatter: many components per batch on average.
    assert np.mean(n_comps) > 4
    # All sources scheduled exactly once per epoch.
    total = sum(b.n_sources for b in batches)
    assert total == graph.n


def test_parallel_speedup_real_threads(benchmark):
    """Real threaded execution of conflict-free updates.

    NumPy kernels release the GIL only partially, so the measured speedup is
    well below linear — report it honestly rather than assert a target.
    """
    import time

    from repro.core import CatalogEntry, default_priors
    from repro.core.joint import JointConfig, RegionOptimizer
    from repro.core.single import OptimizeConfig
    from repro.parallel import ParallelRegionConfig, optimize_region_parallel
    from repro.core.joint import optimize_region
    from repro.psf import default_psf
    from repro.survey import AffineWCS, ImageMeta, render_image

    entries = [
        CatalogEntry([12.0 + 18.0 * k, 12.0], False, 35.0,
                     [1.5, 1.1, 0.25, 0.05])
        for k in range(4)
    ]
    rng = np.random.default_rng(2)
    images = [
        render_image(entries, ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (24, 80), rng=rng)
        for b in (1, 2, 3)
    ]
    priors = default_priors()
    joint = JointConfig(n_passes=1,
                        single=OptimizeConfig(max_iter=15, grad_tol=5e-4))

    def run_pair():
        t0 = time.perf_counter()
        optimize_region(images, entries, priors, joint)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        optimize_region_parallel(
            images, entries, priors,
            ParallelRegionConfig(n_threads=4, n_passes=1, joint=joint),
        )
        t_parallel = time.perf_counter() - t0
        return t_serial, t_parallel

    t_serial, t_parallel = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_header("Cyclades threaded execution, 4 isolated sources")
    print("serial:   %.2f s" % t_serial)
    print("4 threads: %.2f s (speedup %.2fx; GIL-limited)" % (
        t_parallel, t_serial / t_parallel))
    assert t_parallel < t_serial * 1.5  # parallelism must not catastrophize
