"""Table II: science accuracy — Celeste vs the Photo heuristic.

The paper validates on Stripe 82 and finds Celeste better on 11 of 12
metrics (everything but missed galaxies), with large margins on position,
brightness, and all four colors.  Here both pipelines run on single-epoch
synthetic imagery and are scored against the exact synthetic ground truth.
"""

import numpy as np

from repro.core import JointConfig, default_priors, optimize_region
from repro.core.single import OptimizeConfig
from repro.photo import run_photo
from repro.survey import SurveyConfig, SyntheticSkyConfig, build_survey
from repro.validation import TABLE2_ROWS, match_catalogs, score_catalog

from conftest import print_header

PAPER = {
    "Position": (0.36, 0.27), "Missed gals": (0.06, 0.19),
    "Missed stars": (0.12, 0.15), "Brightness": (0.21, 0.14),
    "Color u-g": (1.32, 0.60), "Color g-r": (0.48, 0.21),
    "Color r-i": (0.25, 0.12), "Color i-z": (0.48, 0.17),
    "Profile": (0.38, 0.28), "Eccentricity": (0.31, 0.23),
    "Scale": (1.62, 0.92), "Angle": (22.54, 17.54),
}


def run_table2():
    rng = np.random.default_rng(82)
    config = SurveyConfig(
        field_width=84, field_height=84, fields_per_run=1, n_runs=1,
        sky=SyntheticSkyConfig(source_density=16.0, min_separation=9.0,
                               flux_floor=15.0),
    )
    layout = build_survey(config, rng=rng)
    truth = layout.truth
    photo_cat = run_photo(layout.images)
    matched = match_catalogs(truth, photo_cat)
    init_entries = [e for _, e in matched.pairs]
    celeste = optimize_region(
        layout.images, init_entries, default_priors(),
        JointConfig(n_passes=1, single=OptimizeConfig(max_iter=20,
                                                      grad_tol=3e-4)),
    )
    return (
        score_catalog(truth, photo_cat).as_rows(),
        score_catalog(truth, celeste.catalog).as_rows(),
        len(truth),
    )


def test_table2_accuracy(benchmark):
    photo_m, celeste_m, n_sources = benchmark.pedantic(
        run_table2, rounds=1, iterations=1
    )

    print_header("Table II — average error, Photo vs Celeste (lower better)")
    print("%-14s %9s %9s | %9s %9s" % ("", "Photo", "Celeste", "paperP",
                                       "paperC"))
    for row in TABLE2_ROWS:
        p, c = photo_m[row], celeste_m[row]
        pp, pc = PAPER[row]
        print("%-14s %9.3f %9.3f | %9.2f %9.2f" % (row, p, c, pp, pc))
    print("(%d synthetic sources; single-epoch imagery)" % n_sources)

    # Headline shape: Celeste wins decisively on position and brightness.
    for row in ("Position", "Brightness"):
        assert celeste_m[row] < photo_m[row], row
    # Colors: Celeste wins at least 3 of 4 and is never meaningfully worse
    # (with a handful of sources a single color can statistically tie).
    color_rows = ("Color u-g", "Color g-r", "Color r-i", "Color i-z")
    wins = sum(celeste_m[r] < photo_m[r] for r in color_rows)
    assert wins >= 3, {r: (photo_m[r], celeste_m[r]) for r in color_rows}
    for r in color_rows:
        assert celeste_m[r] <= photo_m[r] * 1.15 + 1e-3, r
    # Celeste's star recall is competitive (within 0.25 absolute).
    if np.isfinite(celeste_m["Missed stars"]):
        assert celeste_m["Missed stars"] <= photo_m["Missed stars"] + 0.25
