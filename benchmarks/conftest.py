"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
section and prints the paper's numbers next to ours.  Absolute times come
from this machine, not a Cray XC40; the asserted properties are the *shapes*
(who wins, by what factor, where crossovers fall).
"""

import os
import sys

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng():
    return np.random.default_rng(20180131)


def print_header(title: str):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
