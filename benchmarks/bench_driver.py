"""End-to-end driver throughput and scheduling overhead.

The paper's headline numbers are for the *complete* three-level run —
partition, Dtree scheduling, Cyclades threads — not isolated kernels.  This
benchmark runs the multi-field driver on a small synthetic strip and reports
its throughput (sources/sec), sustained model FLOP rate, and the share of
worker time spent in the scheduler (which the paper keeps negligible via
Dtree's O(log N) request path).
"""

import numpy as np
import pytest

from repro.core.joint import JointConfig
from repro.core.single import OptimizeConfig
from repro.driver import DriverConfig, run_pipeline
from repro.envvars import env_flag
from repro.parallel import ParallelRegionConfig
from repro.survey import SyntheticSkyConfig, generate_survey_fields
from repro.validation import match_catalogs

from conftest import print_header

pytestmark = pytest.mark.slow

SMOKE = env_flag("REPRO_BENCH_SMOKE")


def _survey(rng):
    sky = SyntheticSkyConfig(
        source_density=60.0, min_separation=7.0, flux_floor=15.0
    )
    return generate_survey_fields(
        2 if SMOKE else 3, field_shape_hw=(40, 40), overlap=8.0,
        config=sky, rng=rng, bands=(2,) if SMOKE else (1, 2, 3),
    )


def _config():
    return DriverConfig(
        n_nodes=2,
        target_weight=60.0,
        parallel=ParallelRegionConfig(
            n_threads=2,
            n_passes=1,
            joint=JointConfig(
                n_passes=1,
                single=OptimizeConfig(max_iter=12, grad_tol=1e-3),
            ),
        ),
    )


def test_driver_throughput(benchmark, rng):
    truth, fields = _survey(rng)

    def run():
        return run_pipeline(fields, _config())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report
    match = match_catalogs(truth, result.catalog)

    print_header("Driver: %d fields, %d injected sources" % (
        len(fields), len(truth)))
    for line in report.summary_lines():
        print("  " + line)
    print("  recovery              %8.0f%%" % (100 * match.completeness))

    per_task = [o.seconds for o in result.outcomes]
    if per_task:
        print("  task seconds          min %.2f / median %.2f / max %.2f" % (
            min(per_task), float(np.median(per_task)), max(per_task)))

    assert report.n_tasks > 0
    assert report.sources_per_second > 0
    # Dtree keeps scheduling a sliver of worker time even at toy scale.
    assert report.scheduling_overhead_fraction < 0.2
    assert report.messages_per_task < 20


def test_driver_executor_modes(benchmark, rng):
    """Thread vs process node-workers: identical catalogs, and the process
    executor's queue/shared-memory plumbing must cost little — single-worker
    throughput within 10% of the thread executor."""
    import dataclasses

    truth, fields = _survey(rng)

    def run():
        out = {}
        for executor in ("thread", "process"):
            config = dataclasses.replace(
                _config(), n_nodes=1, executor=executor
            )
            out[executor] = run_pipeline(fields, config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Driver executor modes (1 node-worker)")
    for executor, res in results.items():
        line = "  %-8s %.2f s wall, %8.2f sources/s" % (
            executor, res.report.wall_seconds,
            res.report.sources_per_second)
        if executor == "process":
            line += ", %d RMA gets / %d puts (%.1f KB)" % (
                res.report.rma_gets, res.report.rma_puts,
                res.report.rma_bytes / 1024.0)
        print(line)

    thread_res = results["thread"]
    process_res = results["process"]
    # The executors must agree exactly — same tasks, same seeds, same rows.
    assert len(thread_res.catalog) == len(process_res.catalog)
    for a, b in zip(thread_res.catalog, process_res.catalog):
        assert np.array_equal(a.position, b.position)
        assert a.flux_r == b.flux_r
    # Acceptance: process mode within 10% of thread throughput at 1 worker.
    assert (
        process_res.report.sources_per_second
        >= 0.9 * thread_res.report.sources_per_second
    )


def test_driver_batch_occupancy(benchmark, rng):
    """Cross-assignment batching's payoff in the full driver: with batch
    coalescing on (the default), lockstep evaluation spans multiple Cyclades
    rounds, so stacked calls carry more lanes and far more of the per-source
    work is served batched instead of falling back to length-1 scalar runs —
    with the catalog bit-for-bit unchanged (coalescing is an execution
    strategy, like the executor choice).

    The survey here is separated (min_separation well past the conflict
    radius) so the conflict graph shatters: that is the regime where small
    sampling rounds fragment lockstep lanes and coalescing wins them back.
    A small ``batch_size`` stands in for the paper-scale situation where a
    region holds many more sources than one sampling round."""
    import dataclasses

    from repro.perf import batch_occupancy

    sky = SyntheticSkyConfig(
        source_density=40.0, min_separation=26.0, flux_floor=20.0
    )
    survey_rng = np.random.default_rng(rng.integers(1 << 31))
    truth, fields = generate_survey_fields(
        2, field_shape_hw=(96, 96), overlap=8.0,
        config=sky, rng=survey_rng, bands=(2,) if SMOKE else (1, 2),
    )
    batch = 8

    def run():
        out = {}
        for coalesce in (False, True):
            config = dataclasses.replace(
                _config(), elbo_batch_size=batch, target_weight=400.0,
                parallel=dataclasses.replace(
                    _config().parallel, batch_size=3,
                    coalesce_batches=coalesce),
            )
            out[coalesce] = run_pipeline(fields, config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def stats(res):
        c = res.counters
        calls = c.get("elbo_batch_calls", 0.0)
        lanes = c.get("elbo_batch_lanes", 0.0)
        return {
            "calls": calls,
            "lanes": lanes,
            "lanes_per_call": lanes / calls if calls else 0.0,
            "occupancy": batch_occupancy(c),
        }

    split, merged = stats(results[False]), stats(results[True])
    print_header("Lockstep batching: per-round vs cross-assignment runs"
                 " (B=%d)" % batch)
    for name, s in (("per-round", split), ("coalesced", merged)):
        print("  %-10s %6d stacked calls  %5.2f lanes/call  "
              "%6d batched lane-evals  occupancy %.3f" % (
                  name, s["calls"], s["lanes_per_call"], s["lanes"],
                  s["occupancy"]))

    # Bit-for-bit: coalescing must never buy occupancy with a different
    # catalog.
    plain, merged_res = results[False], results[True]
    assert len(plain.catalog) == len(merged_res.catalog)
    for a, b in zip(plain.catalog, merged_res.catalog):
        assert np.array_equal(a.position, b.position)
        assert a.flux_r == b.flux_r
    # The point of the feature: the same per-source work rides fuller
    # stacked calls, and more of it is batched at all (a length-1 run falls
    # back to the scalar path and batches nothing).
    assert merged["lanes_per_call"] > split["lanes_per_call"]
    assert merged["lanes"] > split["lanes"]
    # Lane repacking keeps the swept batches dense in both modes.
    assert merged["occupancy"] >= 0.5


def test_driver_race_detect_overhead(benchmark, rng):
    """Cost of the determinism instrumentation: the same run with shadow
    RMA recording, Cyclades shadow writes, and pre-execution schedule
    verification enabled.  It is purely observational — identical catalog,
    zero reports — and must stay cheap enough to leave on in CI."""
    import dataclasses

    truth, fields = _survey(rng)

    def run():
        out = {}
        for detect in (False, True):
            config = dataclasses.replace(
                _config(), race_detect=detect, verify_schedule=detect
            )
            out[detect] = run_pipeline(fields, config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    plain, shadowed = results[False], results[True]
    overhead = (shadowed.report.wall_seconds / plain.report.wall_seconds
                - 1.0) if plain.report.wall_seconds > 0 else 0.0
    print_header("Shadow race detector + schedule verifier overhead")
    print("  detection off         %8.2f s wall" % plain.report.wall_seconds)
    print("  detection on          %8.2f s wall  (%+.1f%%)" % (
        shadowed.report.wall_seconds, 100.0 * overhead))
    print("  races reported        %8d" % len(shadowed.report.race_reports))

    assert shadowed.report.race_reports == []
    assert len(plain.catalog) == len(shadowed.catalog)
    for a, b in zip(plain.catalog, shadowed.catalog):
        assert np.array_equal(a.position, b.position)
        assert a.flux_r == b.flux_r
    # Acceptance: instrumentation costs a fraction of the run, not a
    # multiple (generous bound — toy-scale wall clocks are noisy).
    assert shadowed.report.wall_seconds < plain.report.wall_seconds * 1.75


def test_driver_numeric_check_overhead(benchmark, rng):
    """Cost of the runtime numeric sanitizer: the same run with every ELBO
    evaluation and trust-region step checked for non-finite values,
    overflow, Hessian asymmetry, and cancellation.  Purely observational —
    identical catalog, zero reports on a healthy run — and the hot-path
    cost when a check fires nothing is one thread-local read plus a few
    finiteness scans, so it must stay cheap enough to leave on in CI."""
    import dataclasses

    truth, fields = _survey(rng)

    def run():
        out = {}
        for check in (False, True):
            config = dataclasses.replace(_config(), numeric_check=check)
            out[check] = run_pipeline(fields, config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    plain, checked = results[False], results[True]
    overhead = (checked.report.wall_seconds / plain.report.wall_seconds
                - 1.0) if plain.report.wall_seconds > 0 else 0.0
    print_header("Runtime numeric sanitizer overhead")
    print("  checking off          %8.2f s wall" % plain.report.wall_seconds)
    print("  checking on           %8.2f s wall  (%+.1f%%)" % (
        checked.report.wall_seconds, 100.0 * overhead))
    print("  findings reported     %8d" % len(checked.report.numeric_reports))

    assert checked.report.numeric_reports == []
    assert len(plain.catalog) == len(checked.catalog)
    for a, b in zip(plain.catalog, checked.catalog):
        assert np.array_equal(a.position, b.position)
        assert a.flux_r == b.flux_r
    # Acceptance: sanitizing costs a fraction of the run, not a multiple
    # (generous bound — toy-scale wall clocks are noisy).
    assert checked.report.wall_seconds < plain.report.wall_seconds * 1.75


def test_driver_node_scaling(benchmark, rng):
    """Wall time should not degrade when node-workers are added."""
    truth, fields = _survey(rng)

    def run():
        out = {}
        for n_nodes in (1, 2):
            import dataclasses

            config = dataclasses.replace(_config(), n_nodes=n_nodes)
            out[n_nodes] = run_pipeline(fields, config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Driver wall time vs node-workers")
    for n_nodes, res in results.items():
        print("  %d node(s): %.2f s wall, %.2f sources/s" % (
            n_nodes, res.report.wall_seconds,
            res.report.sources_per_second))
    # Tasks are independent, so more nodes must not make the run much
    # slower (GIL-bound kernels limit the speedup, not correctness).
    assert (
        results[2].report.wall_seconds
        < results[1].report.wall_seconds * 1.35
    )
