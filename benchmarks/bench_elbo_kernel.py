"""Section V/VI-B: the vectorized ELBO kernel, per evaluation backend.

The paper's unit of account is the active-pixel visit (32,317 FLOPs each).
This benchmark measures our per-visit evaluation rate under both ELBO
backends — the Taylor reference path and the fused analytic kernel —
splits each evaluation's cost into its pixel term and its
(pixel-count-independent) KL terms, reports the implied single-thread DP
FLOP rate under the paper's accounting, records the numbers in
``BENCH_elbo_backend.json`` (so the perf trajectory of the objective layer
is tracked across PRs), and checks the ablation that the
variance-correction (delta approximation) term is a material part of the
objective.

**Smoke mode** (``REPRO_BENCH_SMOKE=1``): a seconds-long wiring check run
in CI — every backend/order/term combination is exercised end to end, but
timings are not trusted, the committed JSON is left untouched, and the
machine-dependent speedup thresholds are skipped.
"""

import json
import os
import time

import numpy as np

from repro.constants import FLOP_OVERHEAD_FACTOR, FLOPS_PER_ACTIVE_PIXEL_VISIT
from repro.core import CatalogEntry, default_priors, elbo, make_context
from repro.core.elbo import elbo_kl
from repro.core.params import canonical_to_free
from repro.core.single import initial_params
from repro.perf.counters import Counters
from repro.perf.flops import visit_rate
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header

#: Where the recorded rates land (repo root, committed alongside the code).
BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_elbo_backend.json",
)

#: CI wiring check: run everything briefly, record nothing, assert no
#: machine-dependent thresholds.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: The fused backend must beat the Taylor reference by at least this factor
#: on per-visit rate at order 2 (ISSUE 3 acceptance criterion).
REQUIRED_SPEEDUP = 3.0

#: ... and at order 1, where the Taylor-mode KL terms used to dominate a
#: fused evaluation before they went closed-form (ISSUE 4 criterion).
REQUIRED_SPEEDUP_ORDER1 = 5.0


def star_context():
    truth = CatalogEntry([15.0, 14.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(5)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (30, 30), rng=rng)
        for b in range(5)
    ]
    counters = Counters()
    ctx = make_context(images, truth.position, default_priors(),
                       counters=counters)
    free = canonical_to_free(
        initial_params(truth, default_priors()).to_canonical(), ctx.u_center
    )
    return ctx, free, counters


def _timed(fn, min_seconds=0.4, min_iters=3):
    """Mean seconds per call of ``fn`` (after one warm-up call, which also
    compiles any fused workspace)."""
    if SMOKE:
        min_seconds, min_iters = 0.01, 1
    fn()
    n = 0
    t0 = time.perf_counter()
    while True:
        fn()
        n += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds and n >= min_iters:
            return elapsed / n


def _time_backend(ctx, free, backend, order, **kwargs):
    return _timed(lambda: elbo(ctx, free, order=order, backend=backend),
                  **kwargs)


def _time_backend_kl(ctx, free, backend, order, **kwargs):
    return _timed(lambda: elbo_kl(ctx, free, order=order, backend=backend),
                  **kwargs)


def test_elbo_kernel_rate(benchmark):
    ctx, free, counters = star_context()
    elbo(ctx, free, order=2, backend="fused")  # warm-up compiles workspace
    counters.reset()

    result = benchmark(lambda: elbo(ctx, free, order=2, backend="fused"))
    assert result.val.shape == ()

    visits_per_eval = ctx.n_active_pixels
    if SMOKE:  # --benchmark-disable leaves no stats; take a quick timing
        seconds = _timed(lambda: elbo(ctx, free, order=2, backend="fused"))
    else:
        seconds = benchmark.stats["mean"]
    rate = visits_per_eval / seconds
    implied = rate * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR

    print_header("ELBO kernel: active-pixel-visit rate (fused, order 2)")
    print("active pixels per evaluation: %d" % visits_per_eval)
    print("visit rate: %.0f visits/s/thread" % rate)
    print("implied DP rate under paper accounting: %.2f GFLOP/s" % (implied / 1e9))
    print("(paper's Xeon Phi threads sustained ~26.6k visits/s each)")
    assert rate > 1000  # sanity: vectorization is working at all


def test_backend_comparison_records_json():
    """Measure both backends at both orders — full evaluations plus the
    KL-only dispatch, so the record splits pixel-term from KL-term cost —
    emit BENCH_elbo_backend.json, and enforce the fused-vs-taylor
    per-visit-rate criteria (>=3x at order 2, >=5x at order 1)."""
    ctx, free, _ = star_context()
    visits = ctx.n_active_pixels

    record = {"visits_per_evaluation": visits, "backends": {}}
    for backend in ("taylor", "fused"):
        entry = {}
        for order in (1, 2):
            sec = _time_backend(ctx, free, backend, order)
            kl_sec = _time_backend_kl(ctx, free, backend, order)
            entry["order%d" % order] = {
                "seconds_per_evaluation": sec,
                # The KL terms cost the same whatever the pixel count; the
                # remainder of a full evaluation is the pixel term.  Before
                # ISSUE 4 the Taylor-mode KL dominated a *fused* order-1
                # evaluation; this split keeps that regression visible.
                "kl_seconds_per_evaluation": kl_sec,
                "pixel_seconds_per_evaluation": max(sec - kl_sec, 0.0),
                "kl_fraction": min(kl_sec / sec, 1.0),
                "visit_rate_per_s": visit_rate(visits, sec),
                "implied_gflops": visit_rate(visits, sec)
                * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR / 1e9,
            }
        record["backends"][backend] = entry

    speedup = {
        "order%d" % order: (
            record["backends"]["fused"]["order%d" % order]["visit_rate_per_s"]
            / record["backends"]["taylor"]["order%d" % order]["visit_rate_per_s"]
        )
        for order in (1, 2)
    }
    record["fused_speedup"] = speedup
    if not SMOKE:  # a smoke run's timings would clobber real measurements
        with open(BENCH_JSON, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")

    print_header("ELBO backends: per-visit rate, taylor vs fused")
    for backend in ("taylor", "fused"):
        for order in (1, 2):
            e = record["backends"][backend]["order%d" % order]
            print("%-7s order %d: %8.0f visits/s  (%6.2f ms/eval, "
                  "%4.1f%% KL)"
                  % (backend, order, e["visit_rate_per_s"],
                     1e3 * e["seconds_per_evaluation"],
                     100.0 * e["kl_fraction"]))
    print("fused speedup: %.1fx (order 2), %.1fx (order 1)"
          % (speedup["order2"], speedup["order1"]))
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    if not SMOKE:
        assert speedup["order2"] >= REQUIRED_SPEEDUP
        assert speedup["order1"] >= REQUIRED_SPEEDUP_ORDER1


def test_variance_correction_ablation(benchmark):
    ctx, free, _ = star_context()
    with_corr = benchmark.pedantic(
        lambda: float(elbo(ctx, free, order=1).val), rounds=1, iterations=1
    )
    without = float(elbo(ctx, free, order=1, variance_correction=False).val)

    print_header("Ablation: E[log F] delta-approximation variance term")
    print("ELBO with variance correction:    %.2f" % with_corr)
    print("ELBO without variance correction: %.2f" % without)
    print("gap: %.2f nats" % (without - with_corr))
    # The correction subtracts Var F/(2 E[F]^2) per pixel: strictly lower.
    assert with_corr < without
    assert without - with_corr > 1.0
