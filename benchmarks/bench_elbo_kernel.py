"""Section V/VI-B: the vectorized ELBO kernel.

The paper's unit of account is the active-pixel visit (32,317 FLOPs each).
This benchmark measures our per-visit evaluation rate, reports the implied
single-thread DP FLOP rate under the paper's accounting, and checks the
ablation that the variance-correction (delta approximation) term is a
material part of the objective.
"""

import numpy as np

from repro.constants import FLOP_OVERHEAD_FACTOR, FLOPS_PER_ACTIVE_PIXEL_VISIT
from repro.core import CatalogEntry, default_priors, elbo, make_context
from repro.core.params import canonical_to_free
from repro.core.single import initial_params
from repro.perf.counters import Counters
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header


def star_context():
    truth = CatalogEntry([15.0, 14.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(5)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (30, 30), rng=rng)
        for b in range(5)
    ]
    counters = Counters()
    ctx = make_context(images, truth.position, default_priors(),
                       counters=counters)
    free = canonical_to_free(
        initial_params(truth, default_priors()).to_canonical(), ctx.u_center
    )
    return ctx, free, counters


def test_elbo_kernel_rate(benchmark):
    ctx, free, counters = star_context()
    elbo(ctx, free, order=2)  # warm-up
    counters.reset()

    result = benchmark(lambda: elbo(ctx, free, order=2))
    assert result.val.shape == ()

    visits_per_eval = ctx.n_active_pixels
    seconds = benchmark.stats["mean"]
    rate = visits_per_eval / seconds
    implied = rate * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR

    print_header("ELBO kernel: active-pixel-visit rate (order 2)")
    print("active pixels per evaluation: %d" % visits_per_eval)
    print("visit rate: %.0f visits/s/thread" % rate)
    print("implied DP rate under paper accounting: %.2f GFLOP/s" % (implied / 1e9))
    print("(paper's Xeon Phi threads sustained ~26.6k visits/s each)")
    assert rate > 1000  # sanity: vectorization is working at all


def test_variance_correction_ablation(benchmark):
    ctx, free, _ = star_context()
    with_corr = benchmark.pedantic(
        lambda: float(elbo(ctx, free, order=1).val), rounds=1, iterations=1
    )
    without = float(elbo(ctx, free, order=1, variance_correction=False).val)

    print_header("Ablation: E[log F] delta-approximation variance term")
    print("ELBO with variance correction:    %.2f" % with_corr)
    print("ELBO without variance correction: %.2f" % without)
    print("gap: %.2f nats" % (without - with_corr))
    # The correction subtracts Var F/(2 E[F]^2) per pixel: strictly lower.
    assert with_corr < without
    assert without - with_corr > 1.0
