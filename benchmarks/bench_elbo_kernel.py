"""Section V/VI-B: the vectorized ELBO kernel, per evaluation backend.

The paper's unit of account is the active-pixel visit (32,317 FLOPs each).
This benchmark measures our per-visit evaluation rate under both ELBO
backends — the Taylor reference path and the fused analytic kernel —
splits each evaluation's cost into its pixel term and its
(pixel-count-independent) KL terms, sweeps the lockstep evaluation batch
size (the paper's AVX-512 many-sources-at-once analogue; B in
{1, 4, 16, 64, 128}) crossed with the kernel execution target
(``numpy``/``array_api``/``numba``), reports the implied single-thread DP
FLOP rate under the paper's accounting, records the numbers in
``BENCH_elbo_backend.json`` (sections ``backend_comparison``,
``batch_sweep``, and ``batch_plateau``, merged so the perf trajectory of
the objective layer is tracked across PRs), and checks the ablation that
the variance-correction (delta approximation) term is a material part of
the objective.

**Smoke mode** (``REPRO_BENCH_SMOKE=1``): a seconds-long wiring check run
in CI — every backend/order/term combination is exercised end to end, but
timings are not trusted, the committed JSON is left untouched, and the
machine-dependent speedup thresholds are skipped.
"""

import json
import os
import time

import numpy as np

from repro.constants import FLOP_OVERHEAD_FACTOR, FLOPS_PER_ACTIVE_PIXEL_VISIT
from repro.core import (
    CatalogEntry,
    compile_elbo_batch,
    default_priors,
    elbo,
    elbo_batch,
    make_context,
)
from repro.core.elbo import elbo_kl
from repro.core.params import canonical_to_free
from repro.core.single import initial_params
from repro.envvars import env_flag
from repro.perf.counters import Counters
from repro.perf.flops import visit_rate
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header

#: Where the recorded rates land (repo root, committed alongside the code).
BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_elbo_backend.json",
)

#: CI wiring check: run everything briefly, record nothing, assert no
#: machine-dependent thresholds.
SMOKE = env_flag("REPRO_BENCH_SMOKE")

#: The fused backend must beat the Taylor reference by at least this factor
#: on per-visit rate at order 2 (ISSUE 3 acceptance criterion).
REQUIRED_SPEEDUP = 3.0

#: ... and at order 1, where the Taylor-mode KL terms used to dominate a
#: fused evaluation before they went closed-form (ISSUE 4 criterion).
REQUIRED_SPEEDUP_ORDER1 = 5.0

#: Batched evaluation must lift the per-visit rate at B=16 by at least this
#: factor over the B=1 fused rate on the sweep context (ISSUE 5 criterion).
REQUIRED_BATCH_SPEEDUP = 1.5

#: Wide batches must stay within chunk-boundary overhead of the B=16 peak
#: per-visit rate instead of regressing (ISSUE 8 criterion: the old global
#: sweep budget let B=64 spill the cache and fall well below this).  With
#: cache-sized sweeps B=64 runs as back-to-back ~16-lane chunks, so its
#: ideal ratio is 1.0 minus a few percent of per-chunk bookkeeping.
REQUIRED_PLATEAU_RATIO = 0.9

#: Lockstep batch sizes the sweep records.
BATCH_SIZES = (1, 4, 16, 64, 128)


def _merge_into_json(section: str, payload) -> None:
    """Merge one section into the committed benchmark JSON, preserving the
    other sections (the backend comparison and the batch sweep are separate
    tests that share the file)."""
    record = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            record = json.load(fh)
    record[section] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def star_context():
    truth = CatalogEntry([15.0, 14.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(5)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (30, 30), rng=rng)
        for b in range(5)
    ]
    counters = Counters()
    ctx = make_context(images, truth.position, default_priors(),
                       counters=counters)
    free = canonical_to_free(
        initial_params(truth, default_priors()).to_canonical(), ctx.u_center
    )
    return ctx, free, counters


def _timed(fn, min_seconds=0.4, min_iters=3, repeats=1):
    """Seconds per call of ``fn`` (after one warm-up call, which also
    compiles any fused workspace).

    With ``repeats`` > 1 the measurement is the *fastest* of ``repeats``
    independent timing windows — the standard ``timeit`` noise rejection:
    background load only ever makes a window slower, so the minimum is the
    best estimate of the undisturbed rate on a shared machine."""
    if SMOKE:
        min_seconds, min_iters, repeats = 0.01, 1, 1

    def window():
        n = 0
        t0 = time.perf_counter()
        while True:
            fn()
            n += 1
            elapsed = time.perf_counter() - t0
            if elapsed >= min_seconds and n >= min_iters:
                return elapsed / n

    fn()
    return min(window() for _ in range(max(repeats, 1)))


def _timed_grid(fns, min_seconds=0.25, min_iters=2, repeats=5):
    """Best-window seconds per call for several measurands at once,
    *interleaved*: each round times one window of every entry before any
    entry gets its next window.  On a shared machine the effective speed
    drifts over minutes; interleaving makes a slow epoch hit all entries
    alike instead of biasing whichever key happened to be on the clock,
    which matters when the recorded quantity is a *ratio* of two entries
    (the B=64/B=16 plateau criterion).  Per key the fastest window wins,
    as in ``_timed``."""
    if SMOKE:
        min_seconds, min_iters, repeats = 0.01, 1, 1
    for fn in fns.values():
        fn()  # warm-up: compile workspaces, fault in buffers
    best = {}
    for _ in range(max(repeats, 1)):
        for key, fn in fns.items():
            n = 0
            t0 = time.perf_counter()
            while True:
                fn()
                n += 1
                elapsed = time.perf_counter() - t0
                if elapsed >= min_seconds and n >= min_iters:
                    break
            sec = elapsed / n
            best[key] = min(best.get(key, sec), sec)
    return best


def _time_backend(ctx, free, backend, order, **kwargs):
    return _timed(lambda: elbo(ctx, free, order=order, backend=backend),
                  **kwargs)


def _time_backend_kl(ctx, free, backend, order, **kwargs):
    return _timed(lambda: elbo_kl(ctx, free, order=order, backend=backend),
                  **kwargs)


def test_elbo_kernel_rate(benchmark):
    ctx, free, counters = star_context()
    elbo(ctx, free, order=2, backend="fused")  # warm-up compiles workspace
    counters.reset()

    result = benchmark(lambda: elbo(ctx, free, order=2, backend="fused"))
    assert result.val.shape == ()

    visits_per_eval = ctx.n_active_pixels
    if SMOKE:  # --benchmark-disable leaves no stats; take a quick timing
        seconds = _timed(lambda: elbo(ctx, free, order=2, backend="fused"))
    else:
        seconds = benchmark.stats["mean"]
    rate = visits_per_eval / seconds
    implied = rate * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR

    print_header("ELBO kernel: active-pixel-visit rate (fused, order 2)")
    print("active pixels per evaluation: %d" % visits_per_eval)
    print("visit rate: %.0f visits/s/thread" % rate)
    print("implied DP rate under paper accounting: %.2f GFLOP/s" % (implied / 1e9))
    print("(paper's Xeon Phi threads sustained ~26.6k visits/s each)")
    assert rate > 1000  # sanity: vectorization is working at all


def test_backend_comparison_records_json():
    """Measure both backends at both orders — full evaluations plus the
    KL-only dispatch, so the record splits pixel-term from KL-term cost —
    emit BENCH_elbo_backend.json, and enforce the fused-vs-taylor
    per-visit-rate criteria (>=3x at order 2, >=5x at order 1)."""
    ctx, free, _ = star_context()
    visits = ctx.n_active_pixels

    record = {"visits_per_evaluation": visits, "backends": {}}
    for backend in ("taylor", "fused"):
        entry = {}
        for order in (1, 2):
            # Longer windows than the default: the order-1 speedup
            # criterion sits within run-to-run noise of short timings.
            sec = _time_backend(ctx, free, backend, order,
                                min_seconds=0.8, min_iters=5)
            kl_sec = _time_backend_kl(ctx, free, backend, order)
            entry["order%d" % order] = {
                "seconds_per_evaluation": sec,
                # The KL terms cost the same whatever the pixel count; the
                # remainder of a full evaluation is the pixel term.  Before
                # ISSUE 4 the Taylor-mode KL dominated a *fused* order-1
                # evaluation; this split keeps that regression visible.
                "kl_seconds_per_evaluation": kl_sec,
                "pixel_seconds_per_evaluation": max(sec - kl_sec, 0.0),
                "kl_fraction": min(kl_sec / sec, 1.0),
                "visit_rate_per_s": visit_rate(visits, sec),
                "implied_gflops": visit_rate(visits, sec)
                * FLOPS_PER_ACTIVE_PIXEL_VISIT * FLOP_OVERHEAD_FACTOR / 1e9,
            }
        record["backends"][backend] = entry

    speedup = {
        "order%d" % order: (
            record["backends"]["fused"]["order%d" % order]["visit_rate_per_s"]
            / record["backends"]["taylor"]["order%d" % order]["visit_rate_per_s"]
        )
        for order in (1, 2)
    }
    record["fused_speedup"] = speedup
    if not SMOKE:  # a smoke run's timings would clobber real measurements
        _merge_into_json("backend_comparison", record)

    print_header("ELBO backends: per-visit rate, taylor vs fused")
    for backend in ("taylor", "fused"):
        for order in (1, 2):
            e = record["backends"][backend]["order%d" % order]
            print("%-7s order %d: %8.0f visits/s  (%6.2f ms/eval, "
                  "%4.1f%% KL)"
                  % (backend, order, e["visit_rate_per_s"],
                     1e3 * e["seconds_per_evaluation"],
                     100.0 * e["kl_fraction"]))
    print("fused speedup: %.1fx (order 2), %.1fx (order 1)"
          % (speedup["order2"], speedup["order1"]))
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    if not SMOKE:
        assert speedup["order2"] >= REQUIRED_SPEEDUP
        assert speedup["order1"] >= REQUIRED_SPEEDUP_ORDER1


#: One prior configuration for every sweep lane, as in production — a
#: survey run holds a single ``Priors``.  Sharing the instance is what
#: lets the batched KL path stack lanes (it groups by prior workspace);
#: per-lane copies would silently demote the KL term to scalar loops and
#: the sweep would understate real batched throughput.
SWEEP_PRIORS = default_priors()


def sweep_context(seed: int):
    """One lane of the batch sweep: a survey-typical *small* source — three
    visits of a 16x16 patch.  Small patches are where per-evaluation
    dispatch overhead dominates and batching pays; they are also the
    realistic regime (most catalog sources are near the detection limit
    with patches a few PSF widths across)."""
    truth = CatalogEntry([8.0, 7.0], False, 25.0 + seed,
                         [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(seed)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (16, 16), rng=rng)
        for b in (1, 2, 3)
    ]
    ctx = make_context(images, truth.position, SWEEP_PRIORS,
                       counters=Counters())
    free = canonical_to_free(
        initial_params(truth, SWEEP_PRIORS).to_canonical(), ctx.u_center
    )
    return ctx, free


def test_batch_sweep_records_json():
    """Sweep the lockstep evaluation batch size (B in {1, 4, 16, 64, 128})
    on the fused backend, record per-visit rates into the committed JSON,
    and enforce the batching criteria: the B=16 per-visit rate must be at
    least 1.5x the B=1 fused rate, and the B=64 rate must stay within a
    few percent of B=16 instead of regressing (the plateau the
    cache-blocking autotune removed — one global sweep budget used to let
    64-lane stacks spill the cache; with cache-sized sweeps a 64-lane
    batch runs as back-to-back 16-lane chunks, so its per-visit rate
    tracks B=16 to within chunk-boundary overhead).  Batched results are
    bit-for-bit equal to scalar ones (asserted here too — the benchmark
    must never record a speedup bought with a different answer)."""
    pairs = [sweep_context(seed) for seed in range(max(BATCH_SIZES))]
    visits = pairs[0][0].n_active_pixels

    handles = {}
    for b in BATCH_SIZES:
        ctxs = [c for c, _ in pairs[:b]]
        frees = [f for _, f in pairs[:b]]
        compiled = compile_elbo_batch(ctxs, backend="fused")
        handles[b] = (ctxs, frees, compiled)
    # Interleaved best-of-5 windows: the plateau criterion (B=64 vs B=16)
    # is a ratio, and measuring the two ends minutes apart would fold
    # machine-speed drift into it.
    secs = _timed_grid({
        b: (lambda h=handles[b]: elbo_batch(
            h[0], h[1], order=2, backend="fused", compiled=h[2]))
        for b in BATCH_SIZES
    })

    sweep = {"visits_per_lane": visits, "order": 2, "rates": {}}
    for b in BATCH_SIZES:
        sweep["rates"]["B%d" % b] = {
            "seconds_per_batch": secs[b],
            "visit_rate_per_s": visit_rate(b * visits, secs[b]),
        }
    rate = {b: sweep["rates"]["B%d" % b]["visit_rate_per_s"]
            for b in BATCH_SIZES}
    sweep["batch16_speedup"] = rate[16] / rate[1]
    sweep["batch64_over_16"] = rate[64] / rate[16]

    # The wiring check smoke mode also asserts: batched == scalar, exactly.
    ctx, free = pairs[0]
    batched = elbo_batch([c for c, _ in pairs[:4]],
                         [f for _, f in pairs[:4]], order=2,
                         backend="fused")[0]
    scalar = elbo(ctx, free, order=2, backend="fused")
    assert float(batched.val) == float(scalar.val)
    assert np.array_equal(batched.hessian(41), scalar.hessian(41))

    if not SMOKE:
        _merge_into_json("batch_sweep", sweep)

    print_header("ELBO batch sweep: per-visit rate vs lockstep batch size")
    for b in BATCH_SIZES:
        print("B=%-3d %9.0f visits/s  (%.3f ms/batch)"
              % (b, rate[b],
                 1e3 * sweep["rates"]["B%d" % b]["seconds_per_batch"]))
    print("B=16 speedup over B=1: %.2fx (criterion >= %.1fx)"
          % (sweep["batch16_speedup"], REQUIRED_BATCH_SPEEDUP))
    print("B=64 over B=16: %.2fx (criterion >= %.2fx)"
          % (sweep["batch64_over_16"], REQUIRED_PLATEAU_RATIO))
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    if not SMOKE:
        assert sweep["batch16_speedup"] >= REQUIRED_BATCH_SPEEDUP
        # The plateau criterion: wider batches must not regress the rate.
        assert sweep["batch64_over_16"] >= REQUIRED_PLATEAU_RATIO


def test_batch_plateau_by_target_records_json():
    """The batch sweep crossed with the kernel execution target, recorded
    as the ``batch_plateau`` section: per-target per-B visit rates plus
    each target's B=64/B=16 ratio.  The numpy target is the production
    path and the one the plateau criterion binds; alternative targets are
    recorded for trajectory (array_api trades throughput for portability;
    numba appears when its dependency is installed)."""
    from repro.core.kernel import get_kernel_target

    targets = ["numpy", "array_api"]
    try:
        get_kernel_target("numba")
        targets.append("numba")
    except ValueError:
        pass

    pairs = [sweep_context(seed) for seed in range(max(BATCH_SIZES))]
    visits = pairs[0][0].n_active_pixels

    handles = {}
    for b in BATCH_SIZES:
        ctxs = [c for c, _ in pairs[:b]]
        frees = [f for _, f in pairs[:b]]
        compiled = compile_elbo_batch(ctxs, backend="fused")
        handles[b] = (ctxs, frees, compiled)
    # One interleaved grid across target x B: both the per-target plateau
    # ratios and the cross-target comparison are ratios, so every cell
    # must sample the same machine epochs (see ``_timed_grid``).
    secs = _timed_grid({
        (target, b): (lambda h=handles[b], t=target: elbo_batch(
            h[0], h[1], order=2, backend="fused", compiled=h[2],
            kernel_target=t))
        for target in targets
        for b in BATCH_SIZES
    }, min_seconds=0.2, repeats=4)

    plateau = {"visits_per_lane": visits, "order": 2, "targets": {},
               "plateau_ratio_b64_over_b16": {}}
    for target in targets:
        rates = {"B%d" % b: visit_rate(b * visits, secs[(target, b)])
                 for b in BATCH_SIZES}
        plateau["targets"][target] = rates
        plateau["plateau_ratio_b64_over_b16"][target] = (
            rates["B64"] / rates["B16"])

    print_header("ELBO batch plateau: per-visit rate vs B x kernel target")
    for target in targets:
        rates = plateau["targets"][target]
        print("%-10s %s  (B64/B16 %.2fx)" % (
            target,
            "  ".join("B%d %8.0f" % (b, rates["B%d" % b])
                      for b in BATCH_SIZES),
            plateau["plateau_ratio_b64_over_b16"][target]))
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    if not SMOKE:
        _merge_into_json("batch_plateau", plateau)
        assert (plateau["plateau_ratio_b64_over_b16"]["numpy"]
                >= REQUIRED_PLATEAU_RATIO)


def test_variance_correction_ablation(benchmark):
    ctx, free, _ = star_context()
    with_corr = benchmark.pedantic(
        lambda: float(elbo(ctx, free, order=1).val), rounds=1, iterations=1
    )
    without = float(elbo(ctx, free, order=1, variance_correction=False).val)

    print_header("Ablation: E[log F] delta-approximation variance term")
    print("ELBO with variance correction:    %.2f" % with_corr)
    print("ELBO without variance correction: %.2f" % without)
    print("gap: %.2f nats" % (without - with_corr))
    # The correction subtracts Var F/(2 E[F]^2) per pixel: strictly lower.
    assert with_corr < without
    assert without - with_corr > 1.0
