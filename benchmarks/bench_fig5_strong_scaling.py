"""Figure 5: strong scaling — the problem size held fixed.

Two halves share the committed ``BENCH_scaling.json``:

**Measured** (``fig5_strong_scaling.measured``): the real three-level
driver on one fixed synthetic survey, process node-workers over the TCP
socket transport at 1/2/4/8 nodes.  This box is a single shared machine,
so wall time cannot halve with each doubling; the asserted properties are
correctness ones — n_nodes is a declared-neutral knob, so every node
count must publish the *bit-identical* catalog, every node-worker must
really participate, and the one-sided traffic must cross the socket
server.

**Paper model** (``fig5_strong_scaling.simulated``): the analytic Cray
XC40 model over the paper's 557,056 tasks at 2048/4096/8192 nodes,
asserting the paper's shape claims — near-perfect task-processing
scaling, constant small "other", imbalance growing in relative
importance, ~65%/~50% efficiency at 4k/8k nodes.

**Smoke mode** (``REPRO_BENCH_SMOKE=1``): a seconds-long wiring check that
runs a tiny survey at 1/2 nodes and does not rewrite the committed JSON.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster import strong_scaling
from repro.cluster.simulate import scaling_efficiency
from repro.core.joint import JointConfig
from repro.core.single import OptimizeConfig
from repro.driver import DriverConfig, run_pipeline
from repro.envvars import env_flag
from repro.parallel import ParallelRegionConfig
from repro.survey import SyntheticSkyConfig, generate_survey_fields

from conftest import print_header

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)

SMOKE = env_flag("REPRO_BENCH_SMOKE")

SIM_NODE_COUNTS = [2048, 4096, 8192]
MEASURED_NODE_COUNTS = [1, 2] if SMOKE else [1, 2, 4, 8]


def _merge_into_json(section: str, payload) -> None:
    """Merge one section into the committed benchmark JSON, preserving the
    other sections (fig 4 and fig 5 share the file)."""
    record = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            record = json.load(fh)
    record[section] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _survey():
    rng = np.random.default_rng(5)
    sky = SyntheticSkyConfig(
        source_density=90.0, min_separation=8.0, flux_floor=20.0
    )
    return generate_survey_fields(
        2 if SMOKE else 8,
        field_shape_hw=(24, 24) if SMOKE else (32, 32),
        overlap=8.0, config=sky, rng=rng, bands=(2,),
    )


def _config(n_nodes):
    return DriverConfig(
        n_nodes=n_nodes,
        executor="process",
        pgas_transport="socket",
        target_weight=30.0,
        parallel=ParallelRegionConfig(
            n_threads=1,
            n_passes=1,
            joint=JointConfig(
                n_passes=1,
                single=OptimizeConfig(max_iter=8, grad_tol=2e-3),
            ),
        ),
    )


def _catalog_rows(catalog):
    return [(tuple(float(v) for v in e.position), float(e.flux_r),
             bool(e.is_galaxy)) for e in catalog]


def test_fig5_strong_scaling_measured(benchmark):
    """Fixed survey, real driver, socket transport, 1/2/4/8 node-workers."""
    _, fields = _survey()

    def run():
        return {n: run_pipeline(fields, _config(n))
                for n in MEASURED_NODE_COUNTS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    t0 = results[MEASURED_NODE_COUNTS[0]].report.wall_seconds
    curve = []
    for n, res in results.items():
        r = res.report
        workers = {rec["worker"] for rec in r.worker_comm}
        curve.append({
            "n_nodes": n,
            "n_tasks": r.n_tasks,
            "wall_seconds": r.wall_seconds,
            "task_seconds": r.task_seconds,
            "sources_per_second": r.sources_per_second,
            "speedup": t0 / r.wall_seconds if r.wall_seconds else 0.0,
            "rma_gets": r.rma_gets,
            "rma_puts": r.rma_puts,
            "rma_bytes": r.rma_bytes,
            "participating_workers": len(workers),
        })

    print_header("Figure 5 — strong scaling, measured "
                 "(real driver, socket transport, %d fields)" % len(fields))
    print("%8s %8s %10s %12s %8s %9s" % (
        "nodes", "tasks", "wall s", "sources/s", "speedup", "workers"))
    for row in curve:
        print("%8d %8d %10.2f %12.2f %8.2f %9d" % (
            row["n_nodes"], row["n_tasks"], row["wall_seconds"],
            row["sources_per_second"], row["speedup"],
            row["participating_workers"]))

    if not SMOKE:
        _merge_into_json("fig5_strong_scaling_measured", {
            "transport": "socket",
            "executor": "process",
            "n_fields": len(fields),
            "curve": curve,
        })
    print("recorded to %s" % ("(smoke: not recorded)" if SMOKE else BENCH_JSON))

    reference = _catalog_rows(results[MEASURED_NODE_COUNTS[0]].catalog)
    assert reference  # the scene is non-trivial
    for n, res in results.items():
        r = res.report
        # n_nodes is declared neutral: the published catalog must be
        # bit-identical at every node count.
        assert _catalog_rows(res.catalog) == reference
        assert r.rma_gets > 0 and r.rma_puts > 0 and r.rma_bytes > 0
        workers = {rec["worker"] for rec in r.worker_comm}
        assert workers <= set(range(n))
        if n >= 4:
            assert len(workers) >= 4  # genuinely multi-node
    # The task set is the same run to run — only its placement varies.
    tasks = {results[n].report.n_tasks for n in MEASURED_NODE_COUNTS}
    assert len(tasks) == 1


def test_fig5_strong_scaling_paper_model(benchmark):
    results = benchmark.pedantic(
        lambda: strong_scaling(SIM_NODE_COUNTS, n_tasks=557_056),
        rounds=1, iterations=1)
    effs = scaling_efficiency(results)

    print_header("Figure 5 — strong scaling, paper model "
                 "(seconds, mean per process)")
    print("%8s %11s %10s %11s %7s %8s %6s" % (
        "nodes", "task proc", "img load", "imbalance", "other", "total",
        "eff"))
    curve = []
    for r, eff in zip(results, effs):
        c = r.components
        print("%8d %11.1f %10.1f %11.1f %7.2f %8.1f %5.0f%%" % (
            r.machine.n_nodes, c.task_processing, c.image_loading,
            c.load_imbalance, c.other, r.wall_seconds, eff * 100))
        curve.append({
            "n_nodes": r.machine.n_nodes,
            "task_processing": c.task_processing,
            "image_loading": c.image_loading,
            "load_imbalance": c.load_imbalance,
            "other": c.other,
            "wall_seconds": r.wall_seconds,
            "efficiency": eff,
        })
    print("paper: 65%% at 4096, 50%% at 8192")

    if not SMOKE:
        _merge_into_json("fig5_strong_scaling_simulated", {
            "n_tasks": 557_056,
            "curve": curve,
        })

    tp = [r.components.task_processing for r in results]
    other = [r.components.other for r in results]
    imb_rel = [r.components.load_imbalance / r.wall_seconds for r in results]

    # Task processing halves with each doubling (near-perfect scaling).
    np.testing.assert_allclose(tp[0] / tp[1], 2.0, rtol=0.05)
    np.testing.assert_allclose(tp[1] / tp[2], 2.0, rtol=0.05)
    # "Other" constant and a small fraction of runtime.
    assert max(other) / min(other) < 1.5
    assert max(other) < 0.05 * results[-1].wall_seconds
    # Imbalance grows in relative importance.
    assert imb_rel[2] > imb_rel[0]
    # Efficiencies in the paper's ballpark.
    assert 0.55 < effs[1] < 0.95
    assert 0.35 < effs[2] < 0.75
