"""Figure 5: strong scaling over 557,056 tasks at 2048/4096/8192 nodes.

Paper claims: image loading and task processing scale nearly perfectly;
"other" stays constant and small; load imbalance grows in relative
importance; 65% efficiency from 2k to 4k nodes and 50% from 2k to 8k.
"""

import numpy as np

from repro.cluster import strong_scaling
from repro.cluster.simulate import scaling_efficiency

from conftest import print_header

NODE_COUNTS = [2048, 4096, 8192]


def run_strong():
    return strong_scaling(NODE_COUNTS, n_tasks=557_056)


def test_fig5_strong_scaling(benchmark):
    results = benchmark.pedantic(run_strong, rounds=1, iterations=1)
    effs = scaling_efficiency(results)

    print_header("Figure 5 — strong scaling (seconds, mean per process)")
    print("%8s %11s %10s %11s %7s %8s %6s" % (
        "nodes", "task proc", "img load", "imbalance", "other", "total", "eff"))
    for r, eff in zip(results, effs):
        c = r.components
        print("%8d %11.1f %10.1f %11.1f %7.2f %8.1f %5.0f%%" % (
            r.machine.n_nodes, c.task_processing, c.image_loading,
            c.load_imbalance, c.other, r.wall_seconds, eff * 100))
    print("paper: 65%% at 4096, 50%% at 8192")

    tp = [r.components.task_processing for r in results]
    other = [r.components.other for r in results]
    imb_rel = [r.components.load_imbalance / r.wall_seconds for r in results]

    # Task processing halves with each doubling (near-perfect scaling).
    np.testing.assert_allclose(tp[0] / tp[1], 2.0, rtol=0.05)
    np.testing.assert_allclose(tp[1] / tp[2], 2.0, rtol=0.05)
    # "Other" constant and a small fraction of runtime.
    assert max(other) / min(other) < 1.5
    assert max(other) < 0.05 * results[-1].wall_seconds
    # Imbalance grows in relative importance.
    assert imb_rel[2] > imb_rel[0]
    # Efficiencies in the paper's ballpark.
    assert 0.55 < effs[1] < 0.95
    assert 0.35 < effs[2] < 0.75
