"""Section IV-B: Dtree vs a centralized queue at scale.

Dtree's tree topology keeps per-request cost at O(log N) hops with most
requests served from the local pool; a central queue serializes every
request.  Measured two ways: raw scheduler throughput in this process, and
modeled "other" time inside the cluster simulator.
"""

from repro.cluster import MachineConfig, WorkloadConfig, simulate_run
from repro.sched import CentralQueue, Dtree

from conftest import print_header


def drain(sched, n_workers, batch=4):
    n = 0
    active = list(range(n_workers))
    while active:
        still = []
        for w in active:
            got = sched.request(w, max_batch=batch)
            n += len(got)
            if got:
                still.append(w)
        active = still
    return n


def test_dtree_request_throughput(benchmark):
    n_workers, n_tasks = 4096, 65_536

    def run():
        sched = Dtree(n_workers, n_tasks)
        assert drain(sched, n_workers) == n_tasks
        return sched

    sched = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = sched.stats
    print_header("Dtree: 65,536 tasks over 4,096 workers")
    print("tree height: %d (log_8(4096) = 4)" % stats["height"])
    print("messages: %d, parent hops: %d (%.3f hops/task)" % (
        stats["messages"], stats["hops"], stats["hops"] / n_tasks))
    assert stats["height"] == 4
    # Locality: most tasks are served without touching the upper tree.
    assert stats["hops"] < n_tasks


def test_dtree_vs_central_modeled_overhead(benchmark):
    def run():
        machine = MachineConfig(n_nodes=64)
        wl = WorkloadConfig(n_tasks=machine.n_processes * 4, seed=9)
        dtree = simulate_run(machine, wl, scheduler="dtree")
        central = simulate_run(machine, wl, scheduler="central")
        return dtree, central

    dtree, central = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Modeled scheduling overhead at 64 nodes (1088 processes)")
    print("dtree   'other': %.2f s/process" % dtree.components.other)
    print("central 'other': %.2f s/process" % central.components.other)
    print("(both include fixed per-process startup and per-task write-back)")
    assert central.components.other > dtree.components.other + 1.0
