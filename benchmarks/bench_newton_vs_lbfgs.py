"""Section IV-D: Newton/trust-region vs L-BFGS on the per-source ELBO.

Paper claims: Newton converges reliably "in tens of iterations" where L-BFGS
takes "up to 2000"; computing the Hessian alongside the gradient costs ~3x a
gradient-only evaluation but cuts total iterations by up to 100x.
"""

import numpy as np

from repro.core import CatalogEntry, default_priors, elbo, make_context
from repro.core.single import OptimizeConfig, optimize_source
from repro.psf import default_psf
from repro.survey import AffineWCS, ImageMeta, render_image

from conftest import print_header


def make_ctx():
    truth = CatalogEntry([13.0, 12.0], False, 30.0, [1.5, 1.1, 0.25, 0.05])
    rng = np.random.default_rng(17)
    images = [
        render_image([truth], ImageMeta(
            band=b, wcs=AffineWCS.translation(0.0, 0.0), psf=default_psf(3.0),
            sky_level=100.0, calibration=100.0), (26, 26), rng=rng)
        for b in (1, 2, 3)
    ]
    return make_context(images, truth.position, default_priors()), truth


def test_newton_vs_lbfgs(benchmark):
    ctx, truth = make_ctx()

    def run_both():
        newton = optimize_source(ctx, truth, OptimizeConfig(
            method="newton", max_iter=100, grad_tol=1e-4))
        lbfgs = optimize_source(ctx, truth, OptimizeConfig(
            method="lbfgs", max_iter=2000, grad_tol=1e-4))
        return newton, lbfgs

    newton, lbfgs = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_header("Newton (trust region) vs L-BFGS on one source's ELBO")
    print("%-10s %10s %12s %10s %12s" % ("method", "iters", "evaluations",
                                         "converged", "final ELBO"))
    for name, res in (("newton", newton), ("lbfgs", lbfgs)):
        print("%-10s %10d %12d %10s %12.1f" % (
            name, res.optim.n_iterations, res.optim.n_evaluations,
            res.optim.converged, res.elbo))
    ratio = max(lbfgs.optim.n_iterations, 1) / max(newton.optim.n_iterations, 1)
    print("iteration ratio (L-BFGS / Newton): %.0fx (paper: 10-100x)" % ratio)

    assert newton.converged
    assert newton.optim.n_iterations < 60          # "tens of iterations"
    assert lbfgs.optim.n_iterations > 5 * newton.optim.n_iterations
    # Both reach comparable objective values when L-BFGS converges at all.
    if lbfgs.converged:
        assert abs(newton.elbo - lbfgs.elbo) < 1e-2 * abs(newton.elbo)


def test_hessian_cost_factor(benchmark):
    import time

    ctx, truth = make_ctx()
    from repro.core.params import canonical_to_free
    from repro.core.single import initial_params

    free = canonical_to_free(
        initial_params(truth, ctx.priors).to_canonical(), ctx.u_center
    )
    elbo(ctx, free, order=2)  # warm-up

    def time_orders():
        t0 = time.perf_counter()
        for _ in range(5):
            elbo(ctx, free, order=1)
        t1 = time.perf_counter()
        for _ in range(5):
            elbo(ctx, free, order=2)
        t2 = time.perf_counter()
        return (t1 - t0) / 5, (t2 - t1) / 5

    grad_t, hess_t = benchmark.pedantic(time_orders, rounds=1, iterations=1)
    factor = hess_t / grad_t
    print_header("Hessian cost factor")
    print("gradient-only evaluation: %.1f ms" % (grad_t * 1e3))
    print("gradient+Hessian:         %.1f ms  (%.1fx; paper: ~3x)" % (
        hess_t * 1e3, factor))
    # Dense NumPy Hessian blocks are pricier than Celeste's hand-coded
    # kernels; accept a wider band around the paper's 3x.
    assert 1.5 < factor < 20.0
